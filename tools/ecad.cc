// ecad — the always-on query service daemon (docs/service.md).
//
//   ecad --socket <path> [--spill-dir <dir>] [--rels N] [--rows N]
//        [--data <dir>] [--threads N] [--max-concurrent N]
//        [--queue-depth N] [--commit-limit-mb N] [--client-mem-limit-mb N]
//        [--est-run-ms N] [--degrade-below-ms N] [--default-timeout-ms N]
//        [--plan-cache-mb N] [--policy <dp|sizes-only|greedy|semijoin>]
//
// Serves QUERY / METRICS / PING requests (length-prefixed frames, see
// src/service/wire.h) over a unix-domain socket until SIGTERM or SIGINT,
// then drains gracefully: new and queued work is rejected with
// kUnavailable, in-flight queries are cancelled and answer kCancelled,
// and the process exits 0 with the global memory tracker at zero.
//
// The catalog is fixed at startup: --rels relations of --rows rows of
// seeded random data (identical to ecatool's, so service results can be
// compared byte-for-byte against solo runs), or R<i>.tbl files from
// --data. On startup the spill directory is swept for per-query
// subdirectories orphaned by crashed processes (crash-safe spill,
// docs/robustness.md).
//
// Admission knobs map straight onto AdmissionConfig:
//   --max-concurrent      queries running at once (default 4)
//   --queue-depth         bounded admission queue; arrivals past it are
//                         shed with kResourceExhausted (default 16)
//   --commit-limit-mb     cap on the sum of admitted memory budgets
//   --client-mem-limit-mb per-query hard limit cap and default (64)
//   --est-run-ms          deadline-aware early rejection threshold
//   --degrade-below-ms    remaining deadline below this => sizes-only
//                         degraded planning (response: degraded=1)
//   --plan-cache-mb       cross-query plan cache byte budget: proven
//                         subplans survive across queries (memo.* hit
//                         metrics; 0 = off, the default)
//   --policy              default plan policy for queries that send no
//                         "policy" field (docs/planner-policies.md);
//                         admission-forced degradation still downgrades
//                         to sizes-only with degraded=1 in the response
//   --plan-cache-file     crash-safe cache persistence: load the snapshot
//                         + write-behind log on startup (after the orphan
//                         sweep), flush on --cache-flush-ms and on drain.
//                         Corrupt or torn files degrade to a cold cache,
//                         never a failed start (docs/robustness.md).
//                         Implies a 32 MB cache when --plan-cache-mb is 0.
//   --cache-flush-ms      write-behind flush period (default 2000; every
//                         8th flush compacts into a full snapshot)
//   --crash-at N          chaos-harness hook: _exit(137) — a simulated
//                         kill -9 — at the N-th process-wide crash step
//                         (tools/chaos_smoke.sh)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/rng.h"
#include "eca/optimizer.h"
#include "service/server.h"
#include "storage/csv.h"
#include "testing/fault_injection.h"
#include "testing/random_data.h"

namespace eca {
namespace {

// SIGTERM/SIGINT set only this flag (async-signal-safe); the main thread
// polls it and runs the actual drain.
volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: ecad --socket <path> [--spill-dir <dir>] [--rels N] "
      "[--rows N] [--data <dir>] [--threads N] [--max-concurrent N] "
      "[--queue-depth N] [--commit-limit-mb N] [--client-mem-limit-mb N] "
      "[--est-run-ms N] [--degrade-below-ms N] [--default-timeout-ms N] "
      "[--plan-cache-mb N] [--plan-cache-file <path>] [--cache-flush-ms N] "
      "[--policy <dp|sizes-only|greedy|semijoin>] "
      "[--crash-at N] [--fault-accept N] [--fault-write N]\n");
  return 2;
}

bool ParseIntFlag(const char* flag, const char* text, int64_t min,
                  int64_t* out) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min) {
    std::fprintf(stderr, "bad %s value '%s' (want an integer >= %lld)\n",
                 flag, text, static_cast<long long>(min));
    return false;
  }
  *out = value;
  return true;
}

// The same seeded data ecatool generates for a --rels-relation query, so
// a client can compare service results against a solo ecatool run.
Database ServedData(int rels, int rows) {
  Rng rng(12345);
  RandomDataOptions opts;
  opts.min_rows = rows;
  opts.max_rows = rows;
  opts.empty_prob = 0;
  Database db;
  for (int i = 0; i < rels; ++i) {
    db.Add(RandomRelation(rng, i, opts));
  }
  return db;
}

StatusOr<Database> DataFromDir(int rels, const std::string& dir) {
  Database db;
  for (int i = 0; i < rels; ++i) {
    Schema schema({{i, "k", DataType::kInt64},
                   {i, "a", DataType::kInt64},
                   {i, "b", DataType::kInt64}});
    Relation rel{schema};
    ECA_RETURN_IF_ERROR(ReadRelationFile(
        dir + "/R" + std::to_string(i) + ".tbl", schema, &rel));
    db.Add(std::move(rel));
  }
  return db;
}

int Main(int argc, char** argv) {
#ifdef _WIN32
  std::fprintf(stderr, "ecad is POSIX-only\n");
  return 1;
#else
  ServerConfig config;
  std::string data_dir;
  int64_t rels = 4, rows = 64, threads = 1;
  int64_t commit_limit_mb = 0, client_mem_limit_mb = 64;
  int64_t crash_at = 0;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    int64_t parsed = 0;
    if (std::strcmp(argv[i], "--socket") == 0) {
      const char* v = next("--socket");
      if (v == nullptr) return 2;
      config.socket_path = v;
    } else if (std::strcmp(argv[i], "--spill-dir") == 0) {
      const char* v = next("--spill-dir");
      if (v == nullptr) return 2;
      config.service.spill_dir = v;
    } else if (std::strcmp(argv[i], "--data") == 0) {
      const char* v = next("--data");
      if (v == nullptr) return 2;
      data_dir = v;
    } else if (std::strcmp(argv[i], "--rels") == 0) {
      const char* v = next("--rels");
      if (v == nullptr || !ParseIntFlag("--rels", v, 1, &rels) || rels > 64) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--rows") == 0) {
      const char* v = next("--rows");
      if (v == nullptr || !ParseIntFlag("--rows", v, 1, &rows) ||
          rows > (int64_t{1} << 30)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = next("--threads");
      if (v == nullptr || !ParseIntFlag("--threads", v, 1, &threads) ||
          threads > 4096) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0) {
      const char* v = next("--max-concurrent");
      if (v == nullptr || !ParseIntFlag("--max-concurrent", v, 1, &parsed)) {
        return 2;
      }
      config.service.admission.max_concurrent = static_cast<int>(parsed);
    } else if (std::strcmp(argv[i], "--queue-depth") == 0) {
      const char* v = next("--queue-depth");
      if (v == nullptr || !ParseIntFlag("--queue-depth", v, 0, &parsed)) {
        return 2;
      }
      config.service.admission.max_queue = static_cast<int>(parsed);
    } else if (std::strcmp(argv[i], "--commit-limit-mb") == 0) {
      const char* v = next("--commit-limit-mb");
      if (v == nullptr ||
          !ParseIntFlag("--commit-limit-mb", v, 0, &commit_limit_mb)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--client-mem-limit-mb") == 0) {
      const char* v = next("--client-mem-limit-mb");
      if (v == nullptr ||
          !ParseIntFlag("--client-mem-limit-mb", v, 0,
                        &client_mem_limit_mb)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--est-run-ms") == 0) {
      const char* v = next("--est-run-ms");
      if (v == nullptr || !ParseIntFlag("--est-run-ms", v, 0, &parsed)) {
        return 2;
      }
      config.service.admission.est_run_ms = parsed;
    } else if (std::strcmp(argv[i], "--degrade-below-ms") == 0) {
      const char* v = next("--degrade-below-ms");
      if (v == nullptr ||
          !ParseIntFlag("--degrade-below-ms", v, 0, &parsed)) {
        return 2;
      }
      config.service.admission.degrade_below_ms = parsed;
    } else if (std::strcmp(argv[i], "--default-timeout-ms") == 0) {
      const char* v = next("--default-timeout-ms");
      if (v == nullptr ||
          !ParseIntFlag("--default-timeout-ms", v, 0, &parsed)) {
        return 2;
      }
      config.service.default_timeout_ms = parsed;
    } else if (std::strcmp(argv[i], "--plan-cache-mb") == 0) {
      const char* v = next("--plan-cache-mb");
      if (v == nullptr || !ParseIntFlag("--plan-cache-mb", v, 0, &parsed)) {
        return 2;
      }
      config.service.plan_cache_bytes = parsed << 20;
    } else if (std::strcmp(argv[i], "--plan-cache-file") == 0) {
      const char* v = next("--plan-cache-file");
      if (v == nullptr) return 2;
      config.service.plan_cache_file = v;
    } else if (std::strcmp(argv[i], "--cache-flush-ms") == 0) {
      const char* v = next("--cache-flush-ms");
      if (v == nullptr || !ParseIntFlag("--cache-flush-ms", v, 0, &parsed)) {
        return 2;
      }
      config.service.cache_flush_ms = parsed;
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      const char* v = next("--policy");
      if (v == nullptr) return 2;
      StatusOr<PlanPolicy> parsed_policy = ParsePlanPolicy(v);
      if (!parsed_policy.ok()) {
        std::fprintf(stderr, "%s\n",
                     parsed_policy.status().ToString().c_str());
        return 2;
      }
      config.service.policy = *parsed_policy;
    } else if (std::strcmp(argv[i], "--crash-at") == 0) {
      const char* v = next("--crash-at");
      if (v == nullptr || !ParseIntFlag("--crash-at", v, 1, &crash_at)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fault-accept") == 0) {
      // Robustness-test hooks: drop the (N+1)-th accepted connection /
      // fail the (N+1)-th response write on each session, so the smoke
      // test can prove clients retry through both.
      const char* v = next("--fault-accept");
      if (v == nullptr ||
          !ParseIntFlag("--fault-accept", v, 0, &config.fault_accept_skip)) {
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fault-write") == 0) {
      const char* v = next("--fault-write");
      if (v == nullptr ||
          !ParseIntFlag("--fault-write", v, 0, &config.fault_write_skip)) {
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (config.socket_path.empty()) return Usage();
  config.service.admission.commit_limit_bytes = commit_limit_mb << 20;
  config.service.client_mem_limit_bytes = client_mem_limit_mb << 20;
  config.service.num_threads = static_cast<int>(threads);

  Database db;
  if (!data_dir.empty()) {
    StatusOr<Database> loaded =
        DataFromDir(static_cast<int>(rels), data_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load data from '%s': %s\n",
                   data_dir.c_str(), loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
  } else {
    db = ServedData(static_cast<int>(rels), static_cast<int>(rows));
  }

  // Arm before Start: the chaos harness wants crash steps to count from
  // the very first query/flush this process serves.
  if (crash_at > 0) CrashInjector::Arm(crash_at);

  EcadServer server(&db, config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!config.service.plan_cache_file.empty()) {
    // The chaos harness greps this line to assert load-or-degrade.
    const CacheStore::LoadResult& load = server.cache_load();
    std::printf(
        "ecad: plan cache %s: loaded %lld entries "
        "(recovered %lld, discarded %lld)%s%s\n",
        config.service.plan_cache_file.c_str(),
        static_cast<long long>(load.loaded),
        static_cast<long long>(load.recovered),
        static_cast<long long>(load.discarded),
        load.degraded ? ", degraded: " : "",
        load.degraded ? load.detail.c_str() : "");
  }
  // The smoke test and clients wait for this exact line before connecting.
  std::printf("ecad: listening on %s (swept %lld orphaned spill dirs)\n",
              config.socket_path.c_str(),
              static_cast<long long>(server.swept_spill_dirs()));
  std::fflush(stdout);

  // Main loop: poll for shutdown; drive the write-behind cache flush.
  // Every 8th flush compacts the log into a full snapshot so a
  // long-running daemon's log stays bounded.
  const int64_t flush_ms = config.service.cache_flush_ms;
  const bool flushing =
      !config.service.plan_cache_file.empty() && flush_ms > 0;
  int64_t since_flush_ms = 0;
  int64_t flush_count = 0;
  while (g_shutdown == 0) {
    ::usleep(50 * 1000);
    since_flush_ms += 50;
    if (flushing && since_flush_ms >= flush_ms) {
      since_flush_ms = 0;
      bool snapshot = (++flush_count % 8) == 0;
      Status flushed = server.state().FlushPlanCache(snapshot);
      if (!flushed.ok()) {
        std::fprintf(stderr, "ecad: cache flush failed: %s\n",
                     flushed.ToString().c_str());
      }
    }
  }

  server.Stop();
  int64_t leftover = server.state().root_tracker().used();
  std::printf("ecad: drained, tracker=%lld bytes\n",
              static_cast<long long>(leftover));
  return leftover == 0 ? 0 : 1;
#endif
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) { return eca::Main(argc, argv); }
