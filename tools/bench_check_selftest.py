#!/usr/bin/env python3
"""Self-test for the bench_check.py policy gate.

Runs bench_check.py against the committed BENCH_policy.json twice over:
once with the baseline as its own candidate (a fresh passing run must exit
0), then once per doctored candidate simulating a regression each gate
exists to catch (must exit 1). Registered as the bench_check_selftest
ctest so a refactor of the checker that silently stops failing bad input
is itself a test failure.

Usage: bench_check_selftest.py <bench_check.py> <BENCH_policy.json>
"""

import copy
import json
import os
import subprocess
import sys
import tempfile


def run_check(check_py, baseline, candidate_obj):
    """Returns bench_check.py's exit status for the given candidate dict."""
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False
    ) as f:
        json.dump(candidate_obj, f)
        path = f.name
    try:
        proc = subprocess.run(
            [
                sys.executable,
                check_py,
                "--baseline",
                baseline,
                "--candidate",
                path,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        return proc.returncode, proc.stdout
    finally:
        os.unlink(path)


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    check_py, baseline = argv
    with open(baseline) as f:
        fresh = json.load(f)
    if fresh.get("bench") != "bench_policy":
        print(f"selftest: {baseline} is not a bench_policy JSON", file=sys.stderr)
        return 2

    failures = 0

    def expect(label, candidate, want_rc):
        nonlocal failures
        rc, out = run_check(check_py, baseline, candidate)
        ok = rc == want_rc
        if not ok:
            failures += 1
            print(out)
        print(f"  [{'ok' if ok else 'FAIL'}] {label}: exit {rc} (want {want_rc})")

    expect("fresh run passes", fresh, 0)

    # Each doctored candidate flips exactly one contract the gate guards.
    d = copy.deepcopy(fresh)
    d["contract_pass"] = False
    expect("contract_pass=false fails", d, 1)

    d = copy.deepcopy(fresh)
    d["rows"][0]["sizes_only_degraded"] = 1
    expect("degraded sizes-only fails", d, 1)

    d = copy.deepcopy(fresh)
    small = next(r for r in d["rows"] if r["rels"] <= 10)
    small["dp_degraded"] = small["queries"]
    expect("dp tripping at <=10 rels fails", d, 1)

    d = copy.deepcopy(fresh)
    star = next(r for r in d["rows"] if r["topology"] == "star" and r["rels"] >= 12)
    star["dp_degraded"] = 0
    expect("dp completing every 12+-rel star fails", d, 1)

    d = copy.deepcopy(fresh)
    chain = next(r for r in d["rows"] if r["topology"] == "chain")
    chain["semijoin_applied"] = 0
    expect("semijoin skipping an acyclic workload fails", d, 1)

    d = copy.deepcopy(fresh)
    cyc = next(r for r in d["rows"] if r["topology"] == "clique")
    cyc["semijoin_applied"] = cyc["queries"]
    expect("semijoin firing on a cyclic workload fails", d, 1)

    d = copy.deepcopy(fresh)
    for r in d["rows"]:
        # A sizes-only that silently fell through to DP enumeration costs
        # DP time; the within-run ratio gate must catch it.
        r["sizes_only_ms"] = r["dp_ms"]
    expect("sizes-only costing dp time fails", d, 1)

    d = copy.deepcopy(fresh)
    d["rows"] = d["rows"][1:]
    expect("missing baseline row fails", d, 1)

    print(f"bench_check_selftest: {failures} failure(s)")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
