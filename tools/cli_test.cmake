# ecatool CLI contract test, run via `cmake -DECATOOL=<path> -P`.
#
# Asserts the strict numeric flag parsing added with the resource governor:
# garbage, trailing-junk, negative, zero and out-of-range values for
# --threads / --rows / --timeout-ms / --mem-limit-mb must exit nonzero with
# a diagnostic naming the flag, and valid governed invocations must run.
# Also covers the observability flags: --trace-out (both --trace-out=FILE
# and --trace-out FILE forms) must write a Chrome-trace JSON file and print
# the summary line, --metrics must print per-approach registry deltas, and
# --metrics-json must end the output with a JSON snapshot.

if(NOT DEFINED ECATOOL)
  message(FATAL_ERROR "pass -DECATOOL=<path to ecatool>")
endif()

set(PLAN "(R0 join[p01] R1)")
set(PRED "p01=R0.a = R1.a")

function(expect_fail label diag_substr)
  execute_process(
    COMMAND ${ECATOOL} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "${label}: expected nonzero exit, got 0\n${out}${err}")
  endif()
  if(NOT err MATCHES "${diag_substr}")
    message(FATAL_ERROR
            "${label}: stderr missing '${diag_substr}':\n${err}")
  endif()
endfunction()

function(expect_ok label)
  execute_process(
    COMMAND ${ECATOOL} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: expected exit 0, got ${rc}\n${out}${err}")
  endif()
  set(LAST_OUT "${out}" PARENT_SCOPE)
endfunction()

# --- strict numeric parsing -------------------------------------------------

expect_fail("threads garbage" "bad --threads value '12abc'"
            explain ${PLAN} --pred ${PRED} --threads 12abc)
expect_fail("threads empty-ish" "bad --threads value 'x'"
            explain ${PLAN} --pred ${PRED} --threads x)
expect_fail("threads zero" "bad --threads value '0'"
            explain ${PLAN} --pred ${PRED} --threads 0)
expect_fail("threads negative" "bad --threads value '-2'"
            explain ${PLAN} --pred ${PRED} --threads -2)
expect_fail("threads huge" "bad --threads value '99999999999'"
            explain ${PLAN} --pred ${PRED} --threads 99999999999)
expect_fail("morsel-rows zero" "bad --morsel-rows value '0'"
            explain ${PLAN} --pred ${PRED} --morsel-rows 0)
expect_fail("morsel-rows garbage" "bad --morsel-rows value '4k'"
            explain ${PLAN} --pred ${PRED} --morsel-rows 4k)
expect_fail("chunk-rows negative" "bad --chunk-rows value '-1'"
            explain ${PLAN} --pred ${PRED} --chunk-rows -1)
expect_fail("rows garbage" "bad --rows value '10q'"
            explain ${PLAN} --pred ${PRED} --rows 10q)
expect_fail("rows negative" "bad --rows value '-3'"
            explain ${PLAN} --pred ${PRED} --rows -3)
expect_fail("timeout garbage" "bad --timeout-ms value 'soon'"
            explain ${PLAN} --pred ${PRED} --timeout-ms soon)
expect_fail("timeout zero" "bad --timeout-ms value '0'"
            explain ${PLAN} --pred ${PRED} --timeout-ms 0)
expect_fail("mem-limit garbage" "bad --mem-limit-mb value '1.5'"
            explain ${PLAN} --pred ${PRED} --mem-limit-mb 1.5)
expect_fail("mem-limit negative" "bad --mem-limit-mb value '-8'"
            explain ${PLAN} --pred ${PRED} --mem-limit-mb -8)
expect_fail("unknown flag" "unknown argument"
            explain ${PLAN} --pred ${PRED} --frobnicate 3)
expect_fail("no subcommand" "usage")
expect_fail("bad gen-tpch sf" "bad scale factor"
            gen-tpch nope /tmp)

# --- governed explain runs --------------------------------------------------

expect_ok("plain explain"
          explain ${PLAN} --pred ${PRED} --rows 32 --approach eca)
expect_ok("tuned explain"
          explain ${PLAN} --pred ${PRED} --rows 32 --approach eca
          --threads 2 --morsel-rows 5 --chunk-rows 3)
expect_ok("governed explain"
          explain ${PLAN} --pred ${PRED} --rows 32 --approach eca
          --timeout-ms 60000 --mem-limit-mb 256)
if(NOT LAST_OUT MATCHES "governor: degraded=")
  message(FATAL_ERROR
          "governed explain did not print governor counters:\n${LAST_OUT}")
endif()

# --- observability flags ----------------------------------------------------

expect_fail("trace-out empty value" "bad --trace-out value"
            explain ${PLAN} --pred ${PRED} --trace-out=)

set(TRACE_FILE "${CMAKE_CURRENT_BINARY_DIR}/ecatool_cli_trace.json")
file(REMOVE "${TRACE_FILE}")
expect_ok("trace + metrics explain"
          explain ${PLAN} --pred ${PRED} --rows 32 --approach eca
          --trace-out=${TRACE_FILE} --metrics)
if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR "--trace-out did not write ${TRACE_FILE}")
endif()
file(READ "${TRACE_FILE}" trace_json)
if(NOT trace_json MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "trace file is not Chrome trace JSON:\n${trace_json}")
endif()
if(NOT trace_json MATCHES "\"optimize\"")
  message(FATAL_ERROR "trace file has no optimize span:\n${trace_json}")
endif()
if(NOT trace_json MATCHES "\"execute\"")
  message(FATAL_ERROR "trace file has no execute span:\n${trace_json}")
endif()
if(NOT LAST_OUT MATCHES "trace: [0-9]+ events")
  message(FATAL_ERROR "missing trace summary line:\n${LAST_OUT}")
endif()
if(NOT LAST_OUT MATCHES "metrics \\(ECA\\):")
  message(FATAL_ERROR "--metrics did not print a registry delta:\n${LAST_OUT}")
endif()
if(NOT LAST_OUT MATCHES "enum\\.subplan_calls")
  message(FATAL_ERROR "metrics delta missing enum counters:\n${LAST_OUT}")
endif()
if(NOT LAST_OUT MATCHES "exec\\.rows_produced")
  message(FATAL_ERROR "metrics delta missing exec counters:\n${LAST_OUT}")
endif()
if(NOT LAST_OUT MATCHES "provenance:")
  message(FATAL_ERROR "explain did not print provenance:\n${LAST_OUT}")
endif()
file(REMOVE "${TRACE_FILE}")

# The space-separated --trace-out form and --metrics-json.
expect_ok("trace space form + metrics-json"
          explain ${PLAN} --pred ${PRED} --rows 32 --approach eca
          --trace-out ${TRACE_FILE} --metrics-json)
if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR "--trace-out FILE form did not write ${TRACE_FILE}")
endif()
if(NOT LAST_OUT MATCHES "\"counters\"")
  message(FATAL_ERROR "--metrics-json did not print JSON:\n${LAST_OUT}")
endif()
if(NOT LAST_OUT MATCHES "\"histograms\"")
  message(FATAL_ERROR "--metrics-json missing histograms:\n${LAST_OUT}")
endif()
file(REMOVE "${TRACE_FILE}")

# --- clean Ctrl-C on governed runs ------------------------------------------

# --self-interrupt-ms raises SIGINT from a timer thread mid-query: the
# handler fires the governed query's CancelToken, the executor unwinds
# with kCancelled releasing every tracker byte and spill file, and
# ecatool exits 130 with an "interrupted" diagnostic.
set(SPILL_DIR "${CMAKE_CURRENT_BINARY_DIR}/ecatool_cli_spill")
file(REMOVE_RECURSE "${SPILL_DIR}")
file(MAKE_DIRECTORY "${SPILL_DIR}")
execute_process(
  COMMAND ${ECATOOL} explain ${PLAN} --pred ${PRED} --rows 3000
          --approach eca --timeout-ms 600000 --mem-limit-mb 4096
          --spill-dir ${SPILL_DIR} --self-interrupt-ms 200
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 130)
  message(FATAL_ERROR
          "self-interrupt: expected exit 130, got ${rc}\n${out}${err}")
endif()
if(NOT err MATCHES "interrupted")
  message(FATAL_ERROR
          "self-interrupt: stderr missing 'interrupted':\n${err}")
endif()
# The cancelled query must not strand a per-query spill subdirectory.
file(GLOB leftover_spill "${SPILL_DIR}/*")
if(leftover_spill)
  message(FATAL_ERROR
          "self-interrupt left spill entries behind: ${leftover_spill}")
endif()
file(REMOVE_RECURSE "${SPILL_DIR}")

# --- crash-recovery spill sweep ---------------------------------------------

set(SWEEP_DIR "${CMAKE_CURRENT_BINARY_DIR}/ecatool_cli_sweep")
file(REMOVE_RECURSE "${SWEEP_DIR}")
# An orphan from a "crashed" process (pid 2000000000 exceeds any live
# pid) plus an unrelated directory the sweep must not touch.
file(MAKE_DIRECTORY "${SWEEP_DIR}/eca-q2000000000-0")
file(WRITE "${SWEEP_DIR}/eca-q2000000000-0/partition-0.bin" "orphan")
file(MAKE_DIRECTORY "${SWEEP_DIR}/keep-me")
expect_ok("sweep-spill-dir" sweep-spill-dir ${SWEEP_DIR})
if(NOT LAST_OUT MATCHES "swept 1 orphaned spill dirs")
  message(FATAL_ERROR "sweep-spill-dir wrong summary:\n${LAST_OUT}")
endif()
if(EXISTS "${SWEEP_DIR}/eca-q2000000000-0")
  message(FATAL_ERROR "sweep-spill-dir left the orphan behind")
endif()
if(NOT EXISTS "${SWEEP_DIR}/keep-me")
  message(FATAL_ERROR "sweep-spill-dir removed an unrelated directory")
endif()
# The --flag spelling is accepted too, and a second sweep finds nothing.
expect_ok("sweep-spill-dir flag form" --sweep-spill-dir ${SWEEP_DIR})
if(NOT LAST_OUT MATCHES "swept 0 orphaned spill dirs")
  message(FATAL_ERROR "re-sweep should reclaim nothing:\n${LAST_OUT}")
endif()
expect_fail("sweep without dir" "usage" sweep-spill-dir)
file(REMOVE_RECURSE "${SWEEP_DIR}")

message(STATUS "ecatool CLI contract: all checks passed")
