// Regenerates Figure 5: the plan pairs P^pg / P^ECA for Q1, Q2, Q3 —
// the PostgreSQL-style plan (best under valid transformations only) and
// the compensated reordering ECA derives via Table 3's rules — plus the
// Figure 7 SQL for Q1.

#include <cstdio>

#include "eca/optimizer.h"
#include "enumerate/join_order.h"
#include "tpch/paper_queries.h"

namespace eca {
namespace {

OrderingNodePtr Leaf(int id) {
  auto n = std::make_shared<OrderingNode>();
  n->rels = RelSet::Single(id);
  return n;
}
OrderingNodePtr Pair(OrderingNodePtr l, OrderingNodePtr r) {
  auto n = std::make_shared<OrderingNode>();
  n->rels = l->rels.Union(r->rels);
  if (l->rels.Min() <= r->rels.Min()) {
    n->left = std::move(l);
    n->right = std::move(r);
  } else {
    n->left = std::move(r);
    n->right = std::move(l);
  }
  return n;
}

int Run() {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 7);
  Optimizer::Options tba_opts;
  tba_opts.approach = Optimizer::Approach::kTBA;
  Optimizer tba{tba_opts};
  Optimizer eca;

  for (int which = 1; which <= 3; ++which) {
    PaperQuery q = which == 1   ? BuildQ1(data, 5.0)
                   : which == 2 ? BuildQ2(data, 5.0)
                                : BuildQ3(data, 5.0);
    std::printf("==== Figure 5: %s ====\n", q.name.c_str());
    std::printf("direct plan (as written):\n%s\n",
                q.plan->ToString().c_str());
    auto pg = tba.Optimize(*q.plan, q.db);
    std::printf("P^pg (valid transformations only, cost %.0f):\n%s\n",
                pg.estimated_cost, pg.plan->ToString().c_str());

    OrderingNodePtr theta = Pair(Leaf(kSupplier), Leaf(kPartsupp));
    if (which >= 2) theta = Pair(theta, Leaf(kLineitem));
    if (which >= 3) theta = Pair(theta, Leaf(kOrders));
    theta = Pair(theta, Leaf(kPart));
    PlanPtr reordered = eca.Reorder(*q.plan, *theta);
    if (reordered == nullptr) {
      std::printf("!! ECA reordering failed\n");
      return 1;
    }
    std::printf("P^ECA (compensated reordering %s):\n%s\n",
                theta->Key().c_str(), reordered->ToString().c_str());

    bool same = SameMultiset(
        CanonicalizeColumnOrder(eca.Execute(*q.plan, q.db)),
        CanonicalizeColumnOrder(eca.Execute(*reordered, q.db)));
    std::printf("plans agree on SF 0.002 data: %s\n\n",
                same ? "yes" : "NO!");
    if (!same) return 1;

    if (which == 1) {
      SqlOptions sql;
      sql.table_names = {"supplier", "partsupp", "part", "lineitem",
                         "orders"};
      std::printf("-- Figure 7(b): SQL enforcing P^ECA --\n%s\n\n",
                  PlanToSql(*reordered, q.db.BaseSchemas(), sql).c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace eca

int main() { return eca::Run(); }
