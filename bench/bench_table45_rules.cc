// Regenerates Tables 4 and 5 (Theorem 4.7 and Appendix B): the rules for
// swapping adjacent lambda operators and for pulling lambda above join
// operators, verified by randomized execution. Rule forms reconstructed
// per Section 4.4; X = R0 loj[pa] R1 supplies the lambda's provenance
// (q = pa, A = {R1}), Y = R2 is the join partner.

#include <cstdlib>

#include "rule_bench_common.h"

namespace eca {
namespace {

RelSet R(int i) { return RelSet::Single(i); }

PlanPtr LambdaX(PredRef pa) {
  RelSet a = R(1);
  PlanPtr base = Plan::Join(JoinOp::kLeftOuter, pa, Plan::Leaf(0),
                            Plan::Leaf(1));
  return Plan::Comp(CompOp::Lambda(std::move(pa), a), std::move(base));
}
PlanPtr BareX(PredRef pa) {
  return Plan::Join(JoinOp::kLeftOuter, std::move(pa), Plan::Leaf(0),
                    Plan::Leaf(1));
}
PredRef Fold(const PredRef& pb, const PredRef& pa) {
  return Predicate::WithLabel(Predicate::And({pb, pa}), "pb&pa");
}

const std::vector<PaperRule>& LambdaRules() {
  static const std::vector<PaperRule>* rules = new std::vector<PaperRule>{
      {26, "swap independent lambdas",
       "lambda[p1,{R1}](lambda[p2,{R2}](X)) = "
       "lambda[p2,{R2}](lambda[p1,{R1}](X))",
       [](PredRef pa, PredRef pb) {
         PlanPtr base = Plan::Join(
             JoinOp::kLeftOuter, pb,
             Plan::Join(JoinOp::kLeftOuter, pa, Plan::Leaf(0),
                        Plan::Leaf(1)),
             Plan::Leaf(2));
         return Plan::Comp(
             CompOp::Lambda(pa, R(1)),
             Plan::Comp(CompOp::Lambda(pb, R(2)), std::move(base)));
       },
       [](PredRef pa, PredRef pb) {
         PlanPtr base = Plan::Join(
             JoinOp::kLeftOuter, pb,
             Plan::Join(JoinOp::kLeftOuter, pa, Plan::Leaf(0),
                        Plan::Leaf(1)),
             Plan::Leaf(2));
         return Plan::Comp(
             CompOp::Lambda(pb, R(2)),
             Plan::Comp(CompOp::Lambda(pa, R(1)), std::move(base)));
       },
       {0, 1, 0, 2}},
      {27, "swap dependent lambdas (outer references inner's attrs)",
       "lambda[p1,{R1}](lambda[p2,{R2}](X)) = "
       "lambda[p2,{R1,R2}](lambda[p1,{R1}](X)), p1 refs R2",
       [](PredRef pa, PredRef pb) {
         // pa joins R1-R2 (references the inner lambda's attrs {R2}).
         PlanPtr base = Plan::Join(
             JoinOp::kLeftOuter, pb,
             Plan::Join(JoinOp::kLeftOuter, pa, Plan::Leaf(1),
                        Plan::Leaf(2)),
             Plan::Leaf(0));
         return Plan::Comp(
             CompOp::Lambda(pa, R(1)),
             Plan::Comp(CompOp::Lambda(pb, R(2)), std::move(base)));
       },
       [](PredRef pa, PredRef pb) {
         PlanPtr base = Plan::Join(
             JoinOp::kLeftOuter, pb,
             Plan::Join(JoinOp::kLeftOuter, pa, Plan::Leaf(1),
                        Plan::Leaf(2)),
             Plan::Leaf(0));
         return Plan::Comp(
             CompOp::Lambda(pb, R(1).Union(R(2))),
             Plan::Comp(CompOp::Lambda(pa, R(1)), std::move(base)));
       },
       {1, 2, 0, 1}},
      {28, "lambda x inner, predicate independent",
       "lambda[pa,{R1}](X) join[pb] R2 = lambda[pa,{R1}](X join[pb] R2)",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kInner, std::move(pb),
                           LambdaX(std::move(pa)), Plan::Leaf(2));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Comp(CompOp::Lambda(pa, R(1)),
                           Plan::Join(JoinOp::kInner, std::move(pb),
                                      BareX(pa), Plan::Leaf(2)));
       },
       {0, 1, 0, 2}},
      {29, "lambda x inner, predicate references nullified attrs: fold",
       "lambda[pa,{R1}](X) join[pb] R2 = X join[pb AND pa] R2",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kInner, std::move(pb),
                           LambdaX(std::move(pa)), Plan::Leaf(2));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kInner, Fold(pb, pa), BareX(pa),
                           Plan::Leaf(2));
       },
       {0, 1, 1, 2}},
      {30, "lambda x left outerjoin (preserved side), independent",
       "lambda[pa,{R1}](X) loj[pb] R2 = lambda[pa,{R1}](X loj[pb] R2)",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftOuter, std::move(pb),
                           LambdaX(std::move(pa)), Plan::Leaf(2));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Comp(CompOp::Lambda(pa, R(1)),
                           Plan::Join(JoinOp::kLeftOuter, std::move(pb),
                                      BareX(pa), Plan::Leaf(2)));
       },
       {0, 1, 0, 2}},
      {31, "lambda x left outerjoin (preserved side), dependent: widen+beta",
       "lambda[pa,{R1}](X) loj[pb] R2 = "
       "beta(lambda[pa,{R1,R2}](X loj[pb] R2))",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftOuter, std::move(pb),
                           LambdaX(std::move(pa)), Plan::Leaf(2));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Comp(
             CompOp::Beta(),
             Plan::Comp(CompOp::Lambda(pa, R(1).Union(R(2))),
                        Plan::Join(JoinOp::kLeftOuter, std::move(pb),
                                   BareX(pa), Plan::Leaf(2))));
       },
       {0, 1, 1, 2}},
      {32, "lambda below outerjoin null side, independent",
       "R2 loj[pb] lambda[pa,{R1}](X) = lambda[pa,{R1}](R2 loj[pb] X)",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftOuter, std::move(pb), Plan::Leaf(2),
                           LambdaX(std::move(pa)));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Comp(CompOp::Lambda(pa, R(1)),
                           Plan::Join(JoinOp::kLeftOuter, std::move(pb),
                                      Plan::Leaf(2), BareX(pa)));
       },
       {0, 1, 0, 2}},
      {33, "lambda below outerjoin null side, dependent: fold",
       "R2 loj[pb] lambda[pa,{R1}](X) = R2 loj[pb AND pa] X",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftOuter, std::move(pb), Plan::Leaf(2),
                           LambdaX(std::move(pa)));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftOuter, Fold(pb, pa), Plan::Leaf(2),
                           BareX(pa));
       },
       {0, 1, 1, 2}},
      {34, "lambda x antijoin (output side), independent",
       "lambda[pa,{R1}](X) laj[pb] R2 = lambda[pa,{R1}](X laj[pb] R2)",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftAnti, std::move(pb),
                           LambdaX(std::move(pa)), Plan::Leaf(2));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Comp(CompOp::Lambda(pa, R(1)),
                           Plan::Join(JoinOp::kLeftAnti, std::move(pb),
                                      BareX(pa), Plan::Leaf(2)));
       },
       {0, 1, 0, 2}},
      {35, "lambda x antijoin (output side), dependent: fold inside lambda",
       "lambda[pa,{R1}](X) laj[pb] R2 = "
       "lambda[pa,{R1}](X laj[pb AND pa] R2)",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftAnti, std::move(pb),
                           LambdaX(std::move(pa)), Plan::Leaf(2));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Comp(CompOp::Lambda(pa, R(1)),
                           Plan::Join(JoinOp::kLeftAnti, Fold(pb, pa),
                                      BareX(pa), Plan::Leaf(2)));
       },
       {0, 1, 1, 2}},
      {36, "lambda on semijoin probe side, dependent: fold and drop",
       "R2 lsj[pb] lambda[pa,{R1}](X) = R2 lsj[pb AND pa] X",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftSemi, std::move(pb), Plan::Leaf(2),
                           LambdaX(std::move(pa)));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftSemi, Fold(pb, pa), Plan::Leaf(2),
                           BareX(pa));
       },
       {0, 1, 1, 2}},
      {37, "lambda on antijoin probe side, dependent: fold and drop",
       "R2 laj[pb] lambda[pa,{R1}](X) = R2 laj[pb AND pa] X",
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftAnti, std::move(pb), Plan::Leaf(2),
                           LambdaX(std::move(pa)));
       },
       [](PredRef pa, PredRef pb) {
         return Plan::Join(JoinOp::kLeftAnti, Fold(pb, pa), Plan::Leaf(2),
                           BareX(pa));
       },
       {0, 1, 1, 2}},
  };
  return *rules;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 200;
  return eca::bench::VerifyRuleTable(
      "Tables 4 & 5: lambda swap and pull-up rules (Theorem 4.7)",
      eca::LambdaRules(), trials);
}
