// Section 5 / Appendix C: top-down plan enumeration with cost-based pruning
// and reuse of optimal subplans. Compares the basic enumerator (Algorithms
// 1-3, no reuse) against the enhanced one (Algorithms 4-6, d-edge-guarded
// subplan reuse) on random queries of growing size — the paper's argument
// for the top-down design is precisely that reuse is possible despite
// compensation operators.
//
// Usage: bench_enumeration [queries_per_size] [max_rels]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "enumerate/enumerator.h"
#include "enumerate/exhaustive.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

void Run(int queries, int max_rels) {
  std::printf("==== Plan enumeration: exhaustive (CBA-style, Section 5.4) "
              "vs top-down basic (Alg 1-3) vs enhanced reuse (Alg 4-6) "
              "====\n");
  std::printf("%5s %8s | %10s | %12s %10s %10s | %12s %10s %10s %8s %8s\n",
              "rels", "queries", "exh ms", "basic calls", "swaps",
              "time(ms)", "enh calls", "swaps", "time(ms)", "reuses",
              "speedup");
  for (int n = 3; n <= max_rels; ++n) {
    EnumeratorStats basic_total, enh_total;
    double basic_ms = 0, enh_ms = 0, exhaustive_ms = 0;
    for (int qi = 0; qi < queries; ++qi) {
      Rng rng(static_cast<uint64_t>(n) * 1009 +
              static_cast<uint64_t>(qi) * 13);
      RandomDataOptions dopts;
      RandomQueryOptions qopts;
      qopts.num_rels = n;
      Database db = RandomDatabase(rng, n, dopts);
      PlanPtr query = RandomQuery(rng, qopts, dopts);
      CostModel cost = CostModel::FromDatabase(db);
      {
        auto t0 = std::chrono::steady_clock::now();
        ExhaustiveResult ex = ExhaustiveEnumerate(*query, cost);
        auto t1 = std::chrono::steady_clock::now();
        exhaustive_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        (void)ex;
      }
      for (int mode = 0; mode < 2; ++mode) {
        EnumeratorOptions opts;
        opts.reuse_subplans = mode == 1;
        TopDownEnumerator e(&cost, opts);
        auto t0 = std::chrono::steady_clock::now();
        auto r = e.Optimize(*query);
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        EnumeratorStats& acc = mode == 0 ? basic_total : enh_total;
        acc.subplan_calls += r.stats.subplan_calls;
        acc.swaps_attempted += r.stats.swaps_attempted;
        acc.reuses += r.stats.reuses;
        (mode == 0 ? basic_ms : enh_ms) += ms;
      }
    }
    std::printf("%5d %8d | %10.1f | %12lld %10lld %10.1f | %12lld %10lld "
                "%10.1f %8lld %7.2fx\n",
                n, queries, exhaustive_ms,
                static_cast<long long>(basic_total.subplan_calls),
                static_cast<long long>(basic_total.swaps_attempted),
                basic_ms,
                static_cast<long long>(enh_total.subplan_calls),
                static_cast<long long>(enh_total.swaps_attempted), enh_ms,
                static_cast<long long>(enh_total.reuses),
                enh_ms > 0 ? basic_ms / enh_ms : 0.0);
  }
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int queries = argc > 1 ? std::atoi(argv[1]) : 10;
  int max_rels = argc > 2 ? std::atoi(argv[2]) : 6;
  eca::Run(queries, max_rels);
  return 0;
}
