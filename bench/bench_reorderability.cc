// Regenerates the paper's Theorem 3.2 comparison: for random queries from
// C_J (and the no-full-outerjoin subclass), the fraction of JoinOrder(Q)
// that each approach can realize. Expected: ECA = 100% on the
// no-full-outerjoin class (complete reorderability), TBA and CBA partial
// and incomparable; on full C_J all three are partial but ECA dominates.
//
// Usage: bench_reorderability [queries_per_class] [num_rels]

#include <cstdio>
#include <cstdlib>

#include "enumerate/join_order.h"
#include "enumerate/realize.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

struct ClassResult {
  int64_t total_orderings = 0;
  int64_t realized[3] = {0, 0, 0};  // TBA, CBA, ECA
  int complete_queries[3] = {0, 0, 0};
  int queries = 0;
};

constexpr SwapPolicy kPolicies[3] = {SwapPolicy::kTBA, SwapPolicy::kCBA,
                                     SwapPolicy::kECA};
constexpr const char* kPolicyNames[3] = {"TBA", "CBA", "ECA"};

ClassResult RunClass(bool allow_foj, double tolerant_prob, int queries,
                     int num_rels, uint64_t seed0) {
  ClassResult result;
  for (int qi = 0; qi < queries; ++qi) {
    Rng rng(seed0 + static_cast<uint64_t>(qi) * 7717);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = num_rels;
    qopts.allow_full_outer = allow_foj;
    qopts.tolerant_pred_prob = tolerant_prob;
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    auto thetas =
        AllJoinOrderingTrees(query->leaves(), PredicateRefSets(*query));
    result.total_orderings += static_cast<int64_t>(thetas.size());
    ++result.queries;
    for (int p = 0; p < 3; ++p) {
      int64_t realized = 0;
      for (const OrderingNodePtr& theta : thetas) {
        if (RealizeOrdering(*query, *theta, kPolicies[p]) != nullptr) {
          ++realized;
        }
      }
      result.realized[p] += realized;
      if (realized == static_cast<int64_t>(thetas.size())) {
        ++result.complete_queries[p];
      }
    }
  }
  return result;
}

void Print(const char* label, const ClassResult& r) {
  std::printf("-- %s: %d random queries, %lld orderings total\n", label,
              r.queries, static_cast<long long>(r.total_orderings));
  std::printf("%8s %22s %10s %20s\n", "approach", "orderings realized",
              "fraction", "completely reorderable");
  for (int p = 0; p < 3; ++p) {
    std::printf("%8s %15lld/%-6lld %9.1f%% %13d/%d queries\n",
                kPolicyNames[p], static_cast<long long>(r.realized[p]),
                static_cast<long long>(r.total_orderings),
                100.0 * static_cast<double>(r.realized[p]) /
                    static_cast<double>(r.total_orderings),
                r.complete_queries[p], r.queries);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int queries = argc > 1 ? std::atoi(argv[1]) : 40;
  int num_rels = argc > 2 ? std::atoi(argv[2]) : 4;
  std::printf("==== Theorems 3.2 and D.1: join reorderability by approach "
              "====\n\n");
  eca::ClassResult no_foj =
      eca::RunClass(false, 0.0, queries, num_rels, 11);
  eca::Print("class C_J without full outerjoins (Theorem 3.2a)", no_foj);
  eca::ClassResult full = eca::RunClass(true, 0.0, queries, num_rels, 13);
  eca::Print("class C_J including full outerjoins (Theorem 3.2b)", full);
  eca::ClassResult tolerant =
      eca::RunClass(false, 0.6, queries, num_rels, 17);
  eca::Print("class C~_J with null-tolerant predicates (Appendix D, "
             "Theorem D.1)",
             tolerant);

  bool ok = no_foj.complete_queries[2] == no_foj.queries &&
            full.realized[2] >= full.realized[0] &&
            full.realized[2] >= full.realized[1] &&
            tolerant.realized[2] >= tolerant.realized[0] &&
            tolerant.realized[2] >= tolerant.realized[1];
  std::printf(ok ? "ECA is complete on the no-full-outerjoin class and "
                   "dominates both baselines on every class.\n"
                 : "!! expected dominance properties violated.\n");
  return ok ? 0 : 1;
}
