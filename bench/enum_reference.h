#ifndef ECA_BENCH_ENUM_REFERENCE_H_
#define ECA_BENCH_ENUM_REFERENCE_H_

#include <cstdint>

#include "algebra/plan.h"
#include "cost/cost_model.h"
#include "rewrite/rules.h"

namespace eca {

// Work counters for the reference enumerator. cloned_nodes + cost_evals is
// the "work" measure bench_enumerator_perf compares against the fast
// enumerator (BENCH_enum.json).
struct ReferenceStats {
  int64_t subplan_calls = 0;
  int64_t pairs_considered = 0;
  int64_t swaps_attempted = 0;
  int64_t reuses = 0;
  int64_t cloned_nodes = 0;
  int64_t cost_evals = 0;
  // True when the search hit max_calls and gave up — the "query exceeds
  // the enumeration budget" outcome of the pre-fast-path enumerator.
  bool call_capped = false;
};

// The pre-fast-path top-down enumerator, kept verbatim as the benchmark
// baseline and identity oracle: whole-plan deep copy per decomposition,
// join relocation by re-scanning the clone's joinable pairs, a full-key
// (relation set + external-d-edge vector) memo, no branch-and-bound, no
// cost memo, sequential. bench_enumerator_perf asserts the fast enumerator
// picks a plan with exactly this enumerator's cost — that is what makes
// its clones/costings reduction a like-for-like measurement rather than a
// quality trade-off. Fault injection is omitted: the bench always runs
// clean. `max_calls` (0 = unlimited) is the one budget knob, a cap on
// GenerateSubplan invocations matching the production enumerator's
// max_enumerated_nodes — it lets the bench show which query sizes the
// pre-fast-path search could not finish within a fixed call budget.
class ReferenceEnumerator {
 public:
  ReferenceEnumerator(const CostModel* cost_model, SwapPolicy policy,
                      bool reuse_subplans = true, int64_t max_calls = 0)
      : cost_(cost_model),
        policy_(policy),
        reuse_(reuse_subplans),
        max_calls_(max_calls) {}

  struct Result {
    PlanPtr plan;
    double cost = 0;
    ReferenceStats stats;
  };

  Result Optimize(const Plan& query);

 private:
  const CostModel* cost_;
  SwapPolicy policy_;
  bool reuse_;
  int64_t max_calls_;
};

}  // namespace eca

#endif  // ECA_BENCH_ENUM_REFERENCE_H_
