// Regenerates Table 3 (Theorems 4.4): the join reordering rules 14-25 —
// the seven new compensated reorderings plus the five CBA-inherited ones —
// verified by randomized execution of both sides.

#include <cstdlib>

#include "rule_bench_common.h"

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 200;
  return eca::bench::VerifyRuleTable(
      "Table 3: join reordering rules 14-25 (Theorem 4.4)",
      eca::PaperTable3Rules(), trials);
}
