// Regenerates Table 1 of the paper: valid (+) / invalid (-) assoc, l-asscom
// and r-asscom transformations for every pair of join operators, by
// randomized counterexample search, and cross-checks the hardcoded matrix
// used by the enumerators ('.' marks patterns that are not expressible).
//
// Usage: bench_table1_matrix [trials_per_cell]

#include <cstdio>
#include <cstdlib>

#include "rewrite/property_probe.h"

namespace eca {
namespace {

const JoinOp kOps[] = {JoinOp::kCross,    JoinOp::kInner,
                       JoinOp::kLeftSemi, JoinOp::kLeftAnti,
                       JoinOp::kLeftOuter, JoinOp::kFullOuter};

int Run(int trials) {
  int mismatches = 0;
  for (bool intolerant : {true, false}) {
    std::printf("######## %s join predicates %s ########\n\n",
                intolerant ? "null-intolerant" : "null-tolerant",
                intolerant ? "(Table 1)" : "(Appendix D)");
    for (TransformType t : {TransformType::kAssoc, TransformType::kLAsscom,
                            TransformType::kRAsscom}) {
      std::printf("==== %s (empirical, %d trials/cell) ====\n",
                  TransformTypeName(t), trials);
      std::printf("%-8s", "");
      for (JoinOp b : kOps) std::printf("%7s", JoinOpName(b));
      std::printf("\n");
      for (JoinOp a : kOps) {
        std::printf("%-8s", JoinOpName(a));
        for (JoinOp b : kOps) {
          ProbeResult r = ClassifyTransform(t, a, b, trials, 0, !intolerant);
          Validity hard = TableOneValidity(t, a, b, intolerant);
          bool agree = r.validity == hard;
          if (!agree) ++mismatches;
          std::printf("%6s%c", ValidityName(r.validity), agree ? ' ' : '!');
        }
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  if (mismatches == 0) {
    std::printf("hardcoded Table 1 agrees with the empirical search.\n");
  } else {
    std::printf("!! %d cells disagree with the hardcoded Table 1 "
                "(marked '!').\n", mismatches);
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 300;
  return eca::Run(trials);
}
