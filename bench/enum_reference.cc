#include "enum_reference.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "enumerate/subtree.h"
#include "rewrite/oj_simplify.h"

namespace eca {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int64_t CountNodes(const Plan* node) {
  if (node == nullptr) return 0;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return 1;
    case Plan::Kind::kJoin:
      return 1 + CountNodes(node->left()) + CountNodes(node->right());
    case Plan::Kind::kComp:
      return 1 + CountNodes(node->child());
  }
  return 0;
}

// Interned ids of the join predicates inside `sub`.
void CollectJoinPredIds(const Plan* sub, PredNameInterner* interner,
                        std::set<int>* out) {
  std::vector<Plan*> joins;
  CollectJoins(const_cast<Plan*>(sub), &joins);
  for (const Plan* j : joins) out->insert(interner->Intern(j->pred()));
}

void CollectVnodes(const Plan* node, std::set<int>* out) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      CollectVnodes(node->left(), out);
      CollectVnodes(node->right(), out);
      return;
    case Plan::Kind::kComp:
      if (node->comp().vnode >= 0) out->insert(node->comp().vnode);
      CollectVnodes(node->child(), out);
      return;
  }
}

void RemapVnodes(Plan* node, int offset) {
  if (node == nullptr) return;
  switch (node->kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      RemapVnodes(node->left(), offset);
      RemapVnodes(node->right(), offset);
      return;
    case Plan::Kind::kComp:
      if (node->mutable_comp().vnode >= 0) {
        node->mutable_comp().vnode += offset;
      }
      RemapVnodes(node->child(), offset);
      return;
  }
}

// The d-edge equivalence key of the seed enumerator (source + rule labels;
// the vnode identity is deliberately excluded, Theorem 5.4).
struct RefExtKey {
  int src = 0;
  int a = 0;
  int b = 0;
  bool operator==(const RefExtKey& o) const {
    return src == o.src && a == o.a && b == o.b;
  }
  bool operator<(const RefExtKey& o) const {
    if (src != o.src) return src < o.src;
    if (a != o.a) return a < o.a;
    return b < o.b;
  }
};

struct RefAPlan {
  PlanPtr root;
  RewriteContext ctx;
};

struct RefCacheEntry {
  RefAPlan plan;
  double cost = 0;
  std::vector<RefExtKey> ext_keys;
};

// Faithful port of the seed search loop: every decomposition deep-copies
// the whole annotated plan, relocates the pair's join in the copy by
// re-scanning its joinable pairs, and recurses by value. The memo maps a
// relation set to a list of (full external-key vector, cached whole plan)
// entries, linearly scanned. No pruning, no cost memo, one thread.
class RefSearch {
 public:
  RefSearch(const CostModel* cost, bool reuse, int64_t max_calls,
            ReferenceStats* stats)
      : cost_(cost), reuse_(reuse), max_calls_(max_calls), stats_(stats) {}

  RefAPlan Clone(const RefAPlan& p) {
    RefAPlan c;
    c.root = p.root != nullptr ? p.root->Clone() : nullptr;
    c.ctx = p.ctx;
    stats_->cloned_nodes += CountNodes(c.root.get());
    return c;
  }

  double SubtreeCost(const RefAPlan& p, RelSet s) {
    ++stats_->cost_evals;
    return cost_->Cost(*SubtreeOf(p.root.get(), s));
  }

  std::vector<RefExtKey> ExtDEdgeKeys(RefAPlan* p, RelSet s) {
    const Plan* sub = SubtreeOf(p->root.get(), s);
    PredNameInterner& interner = p->ctx.Interner();
    std::set<int> inside_ids;
    CollectJoinPredIds(sub, &interner, &inside_ids);
    std::set<int> inside_vnodes, all_vnodes;
    CollectVnodes(sub, &inside_vnodes);
    CollectVnodes(p->root.get(), &all_vnodes);
    std::vector<RefExtKey> keys;
    for (const DEdge& e : p->ctx.dedges) {
      if (inside_ids.find(e.src_pred) == inside_ids.end()) continue;
      bool external;
      if (e.vnode == DEdge::kContextVnode) {
        external = inside_ids.find(e.label_b) == inside_ids.end();
      } else {
        bool in = inside_vnodes.count(e.vnode) > 0;
        bool out_exists = all_vnodes.count(e.vnode) > 0 && !in;
        external = !in || out_exists;
      }
      if (external) keys.push_back({e.src_pred, e.label_a, e.label_b});
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  const RefAPlan* GetBestPlan(RelSet s,
                              const std::vector<RefExtKey>& ext_keys) const {
    auto it = cache_.find(s.bits());
    if (it == cache_.end()) return nullptr;
    for (const RefCacheEntry& entry : it->second) {
      if (entry.ext_keys == ext_keys) return &entry.plan;
    }
    return nullptr;
  }

  void UpdateBestPlan(const RefAPlan& p, RelSet s,
                      const std::vector<RefExtKey>& ext_keys) {
    double cost = SubtreeCost(p, s);
    std::vector<RefCacheEntry>& entries = cache_[s.bits()];
    for (RefCacheEntry& entry : entries) {
      if (entry.ext_keys == ext_keys) {
        if (cost < entry.cost) {
          entry.plan = Clone(p);
          entry.cost = cost;
        }
        return;
      }
    }
    entries.push_back({Clone(p), cost, ext_keys});
  }

  void GraftSubplan(RefAPlan* p, RelSet s, const RefAPlan& best) {
    Plan* dst_sub = SubtreeOf(p->root.get(), s);
    const Plan* src_sub = SubtreeOf(best.root.get(), s);
    PredNameInterner& interner = p->ctx.Interner();
    std::set<int> replaced_ids;
    CollectJoinPredIds(dst_sub, &interner, &replaced_ids);
    std::vector<DEdge> kept;
    for (const DEdge& e : p->ctx.dedges) {
      if (replaced_ids.find(e.src_pred) == replaced_ids.end()) {
        kept.push_back(e);
      }
    }
    PlanPtr graft = src_sub->Clone();
    stats_->cloned_nodes += CountNodes(graft.get());
    int offset = p->ctx.next_vnode;
    RemapVnodes(graft.get(), offset);
    std::set<int> graft_ids;
    CollectJoinPredIds(graft.get(), &interner, &graft_ids);
    for (const DEdge& e : best.ctx.dedges) {
      if (graft_ids.find(e.src_pred) == graft_ids.end()) continue;
      DEdge moved = e;
      if (moved.vnode >= 0) moved.vnode += offset;
      kept.push_back(moved);
    }
    p->ctx.next_vnode += best.ctx.next_vnode;
    p->ctx.dedges = std::move(kept);
    PlanPtr* slot = FindSlot(p->root, dst_sub);
    ECA_CHECK(slot != nullptr);
    *slot = std::move(graft);
  }

  RefAPlan GenerateSubplan(RefAPlan p, const std::optional<NodePath>& i_path,
                           RelSet s) {
    if (max_calls_ > 0 && stats_->subplan_calls >= max_calls_) {
      stats_->call_capped = true;
      return RefAPlan{};  // out of budget: abandon this branch
    }
    ++stats_->subplan_calls;
    if (s.Count() <= 1) return p;

    std::vector<RefExtKey> my_ext_keys;
    if (reuse_) {
      my_ext_keys = ExtDEdgeKeys(&p, s);
      if (const RefAPlan* cached = GetBestPlan(s, my_ext_keys)) {
        ++stats_->reuses;
        GraftSubplan(&p, s, *cached);
        return p;
      }
    }

    RefAPlan best;
    double best_cost = kInf;

    std::vector<JoinablePair> pairs = JoinablePairs(p.root.get(), s);
    for (const JoinablePair& pair : pairs) {
      ++stats_->pairs_considered;
      RefAPlan work = Clone(p);
      std::vector<JoinablePair> clone_pairs =
          JoinablePairs(work.root.get(), s);
      Plan* j = nullptr;
      for (const JoinablePair& cp : clone_pairs) {
        if (cp.s1 == pair.s1 && cp.s2 == pair.s2) {
          j = cp.node;
          break;
        }
      }
      if (j == nullptr) continue;

      Plan* i_node =
          i_path.has_value() ? ResolvePath(work.root.get(), *i_path) : nullptr;
      bool feasible = true;
      int guard = 0;
      while (ParentJoin(work.root.get(), j) != i_node) {
        ++stats_->swaps_attempted;
        Plan* risen = SwapUp(work.root, j, &work.ctx);
        if (risen == nullptr) {
          feasible = false;
          break;
        }
        j = risen;
        if (++guard > 128) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;

      NodePath j_path;
      if (!PathTo(work.root.get(), j, &j_path)) continue;
      RelSet left_set = j->left()->leaves();
      RelSet first = left_set == pair.s1 || left_set.ContainsAll(pair.s1)
                         ? pair.s1
                         : pair.s2;
      RelSet second = first == pair.s1 ? pair.s2 : pair.s1;
      RefAPlan done1 = GenerateSubplan(std::move(work), j_path, first);
      if (done1.root == nullptr) continue;
      RefAPlan done2 = GenerateSubplan(std::move(done1), j_path, second);
      if (done2.root == nullptr) continue;

      double cost = SubtreeCost(done2, s);
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(done2);
      }
    }

    if (best.root != nullptr && reuse_) {
      UpdateBestPlan(best, s, my_ext_keys);
    }
    return best;
  }

 private:
  const CostModel* cost_;
  bool reuse_;
  int64_t max_calls_;
  ReferenceStats* stats_;
  std::unordered_map<uint64_t, std::vector<RefCacheEntry>> cache_;
};

}  // namespace

ReferenceEnumerator::Result ReferenceEnumerator::Optimize(const Plan& query) {
  Result result;
  RefSearch search(cost_, reuse_, max_calls_, &result.stats);

  RefAPlan init;
  init.root = query.Clone();
  result.stats.cloned_nodes += CountNodes(init.root.get());
  SimplifyOuterJoins(init.root.get());
  init.ctx.policy = policy_;
  // Force the interner into existence before the first clone: every clone
  // then shares it, so d-edge ids compare across plans exactly like the
  // seed's globally-consistent string keys did.
  init.ctx.Interner();

  RelSet all = init.root->leaves();
  RefAPlan best = search.GenerateSubplan(std::move(init), std::nullopt, all);

  if (best.root == nullptr) {
    result.plan = query.Clone();
    result.cost = cost_->Cost(*result.plan);
    return result;
  }
  result.plan = std::move(best.root);
  result.cost = cost_->Cost(*result.plan);
  return result;
}

}  // namespace eca
