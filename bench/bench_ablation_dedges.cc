// Ablation for Section 5.2 / Example 5.1: subplan reuse guarded by
// external dependency edges (Theorem 5.4) versus naive reuse keyed on the
// relation set alone. The paper's point is that compensation operators make
// equal relation sets insufficient for reuse; this bench quantifies it:
// the guarded enumerator never deviates from the query's semantics, the
// naive one returns wrong plans on a fraction of random queries.
//
// Usage: bench_ablation_dedges [queries] [num_rels]

#include <cstdio>
#include <cstdlib>

#include "enumerate/enumerator.h"
#include "exec/executor.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

int Run(int queries, int num_rels) {
  int broken_naive = 0, broken_guarded = 0;
  int64_t reuses_naive = 0, reuses_guarded = 0;
  for (int seed = 0; seed < queries; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 31 + 17);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = num_rels + seed % 2;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    CostModel cost = CostModel::FromDatabase(db);
    for (bool unsafe : {false, true}) {
      EnumeratorOptions opts;
      opts.unsafe_ignore_dedges = unsafe;
      TopDownEnumerator e(&cost, opts);
      auto r = e.Optimize(*query);
      if (r.plan == nullptr) continue;
      bool ok = PlansEquivalentOn(*query, *r.plan, db);
      if (unsafe) {
        reuses_naive += r.stats.reuses;
        if (!ok) ++broken_naive;
      } else {
        reuses_guarded += r.stats.reuses;
        if (!ok) ++broken_guarded;
      }
    }
  }
  std::printf("==== Ablation: d-edge-guarded subplan reuse (Example 5.1) "
              "====\n");
  std::printf("%-34s %10s %14s\n", "", "reuses", "wrong plans");
  std::printf("%-34s %10lld %10d/%d\n", "guarded (ExtDEdge, Theorem 5.4)",
              static_cast<long long>(reuses_guarded), broken_guarded,
              queries);
  std::printf("%-34s %10lld %10d/%d\n", "naive (relation set only)",
              static_cast<long long>(reuses_naive), broken_naive, queries);
  if (broken_guarded != 0) {
    std::printf("!! the guarded enumerator must never produce a wrong "
                "plan\n");
    return 1;
  }
  std::printf("\nguarded reuse: always correct; naive reuse returned %d "
              "non-equivalent plan(s) — the compensation operators make "
              "equal relation sets insufficient for reuse, exactly the "
              "paper's Example 5.1.\n",
              broken_naive);
  return 0;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int queries = argc > 1 ? std::atoi(argv[1]) : 120;
  int num_rels = argc > 2 ? std::atoi(argv[2]) : 4;
  return eca::Run(queries, num_rels);
}
