// Regenerates Figure 6(a)-(c): Q1 = R1 laj (R2 laj R3) on three database
// scales, varying the antijoin selectivity f12. The paper reports P^ECA
// winning at large f12 by up to 1.36x / 1.47x / 1.65x.

#include "fig6_common.h"

int main(int argc, char** argv) {
  eca::bench::SweepConfig cfg;
  cfg.figure = "Figure 6(a)-(c)";
  cfg.which_query = 1;
  if (argc > 1) cfg.iters = std::atoi(argv[1]);
  return eca::bench::RunFig6Sweep(cfg);
}
