// bench_parallel_exec — scaling of the morsel-driven vectorized executor on
// the Figure 6 workload (Q2/Q3 at the largest default scale), at 1/2/4
// threads.
//
//   bench_parallel_exec [--sf X] [--nu V] [--iters N] [--out FILE]
//                       [--morsel-rows N] [--chunk-rows N]
//
// Every multi-threaded result is checked byte-for-byte (rows AND order)
// against the single-threaded run before any timing is reported — a speedup
// on wrong or reordered output would be meaningless. Timings and partition
// stats go to FILE (default BENCH_exec.json); the speedup column reports
// t(1 thread) / t(N threads) on this machine, so expect ~1.0x on a
// single-core CI box and real scaling on multi-core hardware. The CI gate
// (tools/bench_check.py) compares these speedup RATIOS against the
// committed baseline — a change that reintroduces cross-thread barriers
// shows up as sub-1.0 ratios on any machine, single-core included (see
// docs/performance.md).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "enumerate/realize.h"
#include "exec/executor.h"
#include "tpch/paper_queries.h"

#include "fig6_common.h"

namespace eca {
namespace {

bool ByteIdentical(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema()) || a.NumRows() != b.NumRows()) return false;
  for (int64_t r = 0; r < a.NumRows(); ++r) {
    const Tuple& x = a.rows()[static_cast<size_t>(r)];
    const Tuple& y = b.rows()[static_cast<size_t>(r)];
    for (size_t c = 0; c < x.size(); ++c) {
      if (x[c].is_null() != y[c].is_null()) return false;
      if (!x[c].is_null() && x[c].Compare(y[c]) != 0) return false;
    }
  }
  return true;
}

struct Run {
  int threads = 1;
  double ms = 0;
  ExecStats stats;
  Relation result{Schema(std::vector<Column>())};
};

Run TimeWithThreads(const Plan& plan, const Database& db, int threads,
                    int iters, const ExecTuning& tuning) {
  Run run;
  run.threads = threads;
  run.ms = 1e300;
  for (int i = 0; i < iters; ++i) {
    Executor ex(
        Executor::Options{Executor::JoinPreference::kHash, threads, tuning});
    auto t0 = std::chrono::steady_clock::now();
    Relation out = ex.Execute(plan, db);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < run.ms) {
      run.ms = ms;
      run.stats = ex.stats();
      run.result = std::move(out);
    }
  }
  return run;
}

struct Workload {
  std::string query;
  std::string plan_kind;  // "direct" or "eca-compensated"
  int64_t rows_out = 0;
  bool identical = true;
  std::vector<Run> runs;
};

void AppendRunJson(std::string* out, const Run& r, double base_ms) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "        {\"threads\": %d, \"ms\": %.3f, \"speedup\": %.3f, "
      "\"join_ms\": %.3f, \"comp_ms\": %.3f, \"hash_build_rows\": %lld, "
      "\"partitions_built\": %lld, \"max_partition_rows\": %lld, "
      "\"min_partition_rows\": %lld, \"partition_skew\": %.3f}",
      r.threads, r.ms, r.ms > 0 ? base_ms / r.ms : 0.0, r.stats.join_ms,
      r.stats.comp_ms, static_cast<long long>(r.stats.hash_build_rows),
      static_cast<long long>(r.stats.partitions_built),
      static_cast<long long>(r.stats.max_partition_rows),
      static_cast<long long>(r.stats.min_partition_rows),
      r.stats.partition_skew);
  *out += buf;
}

int Main(int argc, char** argv) {
  double sf = 0.02;  // the largest default Figure 6 scale ("100GB-analog")
  double nu = 50;
  int iters = 3;
  std::string out_path = "BENCH_exec.json";
  ExecTuning tuning;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--nu") == 0 && i + 1 < argc) {
      nu = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--morsel-rows") == 0 && i + 1 < argc) {
      tuning.morsel_rows = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--chunk-rows") == 0 && i + 1 < argc) {
      tuning.chunk_rows = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_exec [--sf X] [--nu V] "
                   "[--iters N] [--out FILE] [--morsel-rows N] "
                   "[--chunk-rows N]\n");
      return 2;
    }
  }
  if (tuning.morsel_rows < 1 || tuning.chunk_rows < 1) {
    std::fprintf(stderr, "--morsel-rows/--chunk-rows must be >= 1\n");
    return 2;
  }
  const std::vector<int> kThreads = {1, 2, 4};

  TpchData data = GenerateTpch(TpchScale::OfSF(sf), 42);
  std::printf("==== parallel partitioned execution: Figure 6 workload, "
              "SF %.3f, nu %.0f (best of %d) ====\n",
              sf, nu, iters);
  std::printf("(%lld supplier, %lld partsupp, %lld lineitem rows)\n\n",
              static_cast<long long>(data.supplier.NumRows()),
              static_cast<long long>(data.partsupp.NumRows()),
              static_cast<long long>(data.lineitem.NumRows()));

  std::vector<Workload> workloads;
  bool all_identical = true;
  for (int which : {2, 3}) {
    PaperQuery q = which == 2 ? BuildQ2(data, nu) : BuildQ3(data, nu);
    OrderingNodePtr theta =
        bench::EcaTargetOrdering(q.plan->leaves().Count());
    PlanPtr eca = RealizeOrdering(*q.plan, *theta, SwapPolicy::kECA);
    if (eca == nullptr) {
      std::fprintf(stderr, "ECA reordering unexpectedly infeasible\n");
      return 1;
    }
    struct {
      const char* kind;
      const Plan* plan;
    } plans[] = {{"direct", q.plan.get()}, {"eca-compensated", eca.get()}};
    for (const auto& p : plans) {
      Workload w;
      w.query = q.name;
      w.plan_kind = p.kind;
      std::printf("-- %s, %s plan\n", q.name.c_str(), p.kind);
      std::printf("%8s %10s %8s %10s %10s %12s %6s\n", "threads", "ms",
                  "speedup", "join_ms", "comp_ms", "partitions", "skew");
      double base_ms = 0;
      for (int t : kThreads) {
        w.runs.push_back(TimeWithThreads(*p.plan, q.db, t, iters, tuning));
        Run& r = w.runs.back();
        if (t == 1) {
          base_ms = r.ms;
          w.rows_out = r.result.NumRows();
        } else if (!ByteIdentical(w.runs.front().result, r.result)) {
          w.identical = false;
          all_identical = false;
        }
        std::printf("%8d %10.2f %7.2fx %10.2f %10.2f %12lld %6.2f\n", t,
                    r.ms, r.ms > 0 ? base_ms / r.ms : 0.0, r.stats.join_ms,
                    r.stats.comp_ms,
                    static_cast<long long>(r.stats.partitions_built),
                    r.stats.partition_skew);
      }
      std::printf("rows out: %lld, results byte-identical: %s\n\n",
                  static_cast<long long>(w.rows_out),
                  w.identical ? "yes" : "NO!");
      workloads.push_back(std::move(w));
    }
  }

  std::string json = "{\n  \"bench\": \"parallel_exec\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"sf\": %.4f,\n  \"nu\": %.1f,\n  \"iters\": %d,\n"
                "  \"morsel_rows\": %lld,\n  \"chunk_rows\": %lld,\n",
                sf, nu, iters, static_cast<long long>(tuning.morsel_rows),
                static_cast<long long>(tuning.chunk_rows));
  json += buf;
  json += "  \"workloads\": [\n";
  for (size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"query\": \"%s\", \"plan\": \"%s\", "
                  "\"rows_out\": %lld, \"identical\": %s,\n      \"runs\": [\n",
                  w.query.c_str(), w.plan_kind.c_str(),
                  static_cast<long long>(w.rows_out),
                  w.identical ? "true" : "false");
    json += buf;
    for (size_t r = 0; r < w.runs.size(); ++r) {
      AppendRunJson(&json, w.runs[r], w.runs[0].ms);
      json += r + 1 < w.runs.size() ? ",\n" : "\n";
    }
    json += "      ]}";
    json += i + 1 < workloads.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Exit status reflects correctness only, never machine-dependent timing.
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) { return eca::Main(argc, argv); }
