// Planner-policy benchmark and behavior gate (docs/planner-policies.md).
//
// Runs seeded JOB-style workloads (sqlgen/workload.h: chain / star / clique
// join graphs at increasing relation counts) through every plan policy —
// the DP enumerator under a fixed deterministic node budget, the
// Simpli-Squared sizes-only order, the cardinality-based greedy order and
// the Yannakakis semijoin pass — and
//
//   1. asserts EXECUTION IDENTITY: every policy's plan must produce the
//      unoptimized query's result multiset, bit for bit after column
//      canonicalization;
//   2. asserts the POLICY CONTRACT: sizes-only and greedy never degrade,
//      semijoin applies its Yannakakis pass on every acyclic topology
//      (chain, star) and defers to DP on every cyclic one (clique), and
//      the DP node budget never trips at or below 10 relations while
//      tripping on star workloads at 12+ — the demonstration that
//      queries DP gives up on still complete under the cheap policies;
//   3. measures PLANNING TIME and the estimated cost of the chosen plans,
//      written to BENCH_policy.json for tools/bench_check.py. The time
//      gates there are within-run ratios (policy ms / dp ms), so machine
//      speed cancels; absolute numbers are reported, never gated.
//
// The process exit code reflects the identity and contract checks ONLY.
//
// Usage: bench_policy [queries_per_config] [max_rels] [json_path]
//                     [dp_node_budget]
//
// Relation counts run 8, 10, 12, ... up to max_rels. The default DP node
// budget is calibrated so the star workloads exhaust it at 12 relations
// while every 10-relation workload finishes inside it; see
// kDefaultDpNodeBudget for why star, not clique, is the hard topology.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eca/optimizer.h"
#include "exec/executor.h"
#include "sqlgen/workload.h"
#include "storage/relation.h"

namespace eca {
namespace {

// The "default budget" the acceptance claim is phrased against: a cap on
// GenerateSubplan invocations per query. Counter-intuitively, STAR is the
// topology that blows up: its spokes attach to the hub through independent
// binary predicates, so nearly every spoke permutation is a legal
// reordering and the search space explodes (the hardest benched 10-rel
// star needs ~190k calls; a 12-rel star seed needs 2.7M). Clique workloads
// look denser but their join predicates AND together conjuncts over all
// earlier relations, which pins the legal decompositions to a handful
// (tens of calls); chains stay polynomial. The cap sits between the 10-
// and 12-relation star costs, so DP completes every benched workload at
// <= 10 relations undegraded and trips on 12+-relation stars — which the
// sizes-only and greedy policies then plan in microseconds.
constexpr int64_t kDefaultDpNodeBudget = 250000;

constexpr PlanPolicy kPolicies[] = {PlanPolicy::kDp, PlanPolicy::kSizesOnly,
                                    PlanPolicy::kGreedy,
                                    PlanPolicy::kSemijoin};
constexpr int kNumPolicies = 4;

struct PolicyCell {
  double ms = 0;
  double cost_sum = 0;
  int degraded = 0;
  int applied = 0;   // semijoin: Yannakakis pass ran; greedy: gate fired
  int deferred = 0;  // policy deferred to dp (note says so)
};

struct ConfigRow {
  Topology topology = Topology::kChain;
  int rels = 0;
  int queries = 0;
  int64_t dp_subplan_calls = 0;
  PolicyCell cells[kNumPolicies];
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int Run(int queries, int max_rels, const std::string& json_path,
        int64_t dp_budget) {
  std::printf("==== Planner policies on JOB-style workloads (identity + "
              "contract) ====\n");
  std::printf("dp node budget: %lld\n\n",
              static_cast<long long>(dp_budget));
  std::printf("%7s %5s | %10s %10s | %10s %10s %10s | %s\n", "topo", "rels",
              "dp ms", "dp calls", "sizes ms", "greedy ms", "semi ms",
              "notes");

  int failures = 0;
  std::vector<ConfigRow> rows;
  const Topology topologies[] = {Topology::kChain, Topology::kStar,
                                 Topology::kClique};
  for (Topology topo : topologies) {
    for (int n = 8; n <= max_rels; n += 2) {
      ConfigRow row;
      row.topology = topo;
      row.rels = n;
      row.queries = queries;
      for (int qi = 0; qi < queries; ++qi) {
        WorkloadOptions wopts;
        wopts.topology = topo;
        wopts.num_rels = n;
        wopts.seed = static_cast<uint64_t>(n) * 7919 +
                     static_cast<uint64_t>(topo) * 131 +
                     static_cast<uint64_t>(qi);
        // Small rows and a tight value domain keep the per-join growth
        // factor near 1, so the execution-identity oracle stays cheap even
        // on 14-relation chains (same calibration as ecafuzz --policy).
        wopts.data.min_rows = 2;
        wopts.data.max_rows = 6;
        wopts.data.domain = 3;
        Workload w = GenerateWorkload(wopts);

        Optimizer plain;  // evaluates the query as written
        Relation oracle =
            CanonicalizeColumnOrder(plain.Execute(*w.query, w.db));

        for (int pi = 0; pi < kNumPolicies; ++pi) {
          PlanPolicy policy = kPolicies[pi];
          Optimizer::Options opts;
          opts.plan_policy = policy;
          if (policy == PlanPolicy::kDp) {
            opts.budget.max_enumerated_nodes = dp_budget;
          }
          Optimizer opt{opts};
          auto t0 = std::chrono::steady_clock::now();
          Optimizer::Optimized best = opt.Optimize(*w.query, w.db);
          PolicyCell& cell = row.cells[pi];
          cell.ms += MsSince(t0);
          cell.cost_sum += best.estimated_cost;
          if (best.stats.degraded) ++cell.degraded;
          const std::string& note = best.provenance.policy_note;
          if (policy == PlanPolicy::kSemijoin) {
            if (note.rfind("yannakakis", 0) == 0) ++cell.applied;
            if (note.rfind("ineligible", 0) == 0) ++cell.deferred;
          } else if (policy == PlanPolicy::kGreedy) {
            if (note.empty()) ++cell.applied;
            else ++cell.deferred;
          }
          if (policy == PlanPolicy::kDp) {
            row.dp_subplan_calls += best.stats.subplan_calls;
          }

          Relation got =
              CanonicalizeColumnOrder(opt.Execute(*best.plan, w.db));
          if (!SameMultiset(oracle, got)) {
            std::printf("IDENTITY FAIL: topo=%s rels=%d query=%d policy=%s "
                        "result multiset differs from the unoptimized "
                        "query\n",
                        TopologyName(topo), n, qi, PlanPolicyName(policy));
            ++failures;
          }
        }
      }

      // -- Policy contract checks on the aggregated config.
      const PolicyCell& dp = row.cells[0];
      const PolicyCell& sizes = row.cells[1];
      const PolicyCell& greedy = row.cells[2];
      const PolicyCell& semi = row.cells[3];
      std::string notes;
      if (sizes.degraded > 0 || greedy.degraded > 0) {
        std::printf("CONTRACT FAIL: topo=%s rels=%d sizes-only/greedy "
                    "flagged degraded (%d/%d) — deliberate policies must "
                    "not be\n",
                    TopologyName(topo), n, sizes.degraded, greedy.degraded);
        ++failures;
      }
      if (topo == Topology::kClique) {
        if (semi.applied > 0) {
          std::printf("CONTRACT FAIL: topo=clique rels=%d semijoin applied "
                      "its Yannakakis pass on a cyclic query\n", n);
          ++failures;
        }
        notes += "semi defers (cyclic); ";
      } else if (semi.applied != queries) {
        std::printf("CONTRACT FAIL: topo=%s rels=%d semijoin applied on "
                    "%d/%d acyclic queries (want all)\n",
                    TopologyName(topo), n, semi.applied, queries);
        ++failures;
      }
      if (n <= 10 && dp.degraded > 0) {
        std::printf("CONTRACT FAIL: topo=%s rels=%d dp tripped the default "
                    "budget on %d/%d queries at <= 10 relations\n",
                    TopologyName(topo), n, dp.degraded, queries);
        ++failures;
      }
      if (topo == Topology::kStar && n >= 12 && dp.degraded == 0) {
        std::printf("CONTRACT FAIL: topo=star rels=%d dp completed all "
                    "%d queries inside the budget (want the budget to trip "
                    "on 12+-relation stars)\n",
                    n, queries);
        ++failures;
      }
      if (dp.degraded > 0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "dp tripped %d/%d", dp.degraded,
                      queries);
        notes += buf;
      }

      std::printf("%7s %5d | %10.1f %10lld | %10.2f %10.2f %10.2f | %s\n",
                  TopologyName(topo), n, dp.ms,
                  static_cast<long long>(row.dp_subplan_calls), sizes.ms,
                  greedy.ms, semi.ms, notes.c_str());
      rows.push_back(row);
    }
  }
  std::printf("\nidentity + contract checks: %s\n",
              failures == 0 ? "PASS" : "FAIL");

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"bench_policy\",\n");
    std::fprintf(out, "  \"dp_node_budget\": %lld,\n",
                 static_cast<long long>(dp_budget));
    std::fprintf(out, "  \"contract_pass\": %s,\n",
                 failures == 0 ? "true" : "false");
    std::fprintf(out, "  \"rows\": [\n");
    const char* policy_keys[] = {"dp", "sizes_only", "greedy", "semijoin"};
    for (size_t i = 0; i < rows.size(); ++i) {
      const ConfigRow& r = rows[i];
      std::fprintf(out,
                   "    {\"topology\": \"%s\", \"rels\": %d, \"queries\": "
                   "%d, \"dp_subplan_calls\": %lld",
                   TopologyName(r.topology), r.rels, r.queries,
                   static_cast<long long>(r.dp_subplan_calls));
      for (int pi = 0; pi < kNumPolicies; ++pi) {
        const PolicyCell& c = r.cells[pi];
        std::fprintf(out,
                     ", \"%s_ms\": %.3f, \"%s_cost\": %.1f, "
                     "\"%s_degraded\": %d, \"%s_applied\": %d, "
                     "\"%s_deferred\": %d",
                     policy_keys[pi], c.ms, policy_keys[pi], c.cost_sum,
                     policy_keys[pi], c.degraded, policy_keys[pi], c.applied,
                     policy_keys[pi], c.deferred);
      }
      std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("warning: could not write %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int queries = argc > 1 ? std::atoi(argv[1]) : 3;
  int max_rels = argc > 2 ? std::atoi(argv[2]) : 14;
  std::string json_path = argc > 3 ? argv[3] : "BENCH_policy.json";
  int64_t dp_budget = argc > 4 ? std::atoll(argv[4])
                               : eca::kDefaultDpNodeBudget;
  return eca::Run(queries, max_rels, json_path, dp_budget);
}
