// Section 6.2: measured cost profiles of the four compensation operators.
// lambda and gamma are single scans (linear); beta and gamma* are
// best-match operations (n log n via null-pattern grouping / sorting).
// Built on google-benchmark.

#include <benchmark/benchmark.h>

#include "exec/executor.h"
#include "testing/random_data.h"

namespace eca {
namespace {

// An outerjoin-shaped input: R0 loj R1 materialized, so tuples carry the
// relation-block NULL patterns the compensation operators see in practice.
Relation MakeInput(int64_t rows) {
  Rng rng(42);
  RandomDataOptions opts;
  opts.min_rows = static_cast<int>(rows);
  opts.max_rows = static_cast<int>(rows);
  opts.domain = std::max<int64_t>(4, rows / 4);
  opts.empty_prob = 0;
  Relation left = RandomRelation(rng, 0, opts);
  Relation right = RandomRelation(rng, 1, opts);
  return EvalJoin(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p"), left,
                  right);
}

void BM_Lambda(benchmark::State& state) {
  Relation in = MakeInput(state.range(0));
  PredRef p = EquiJoin(0, "b", 1, "b", "q");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalLambda(p, RelSet::Single(1), in));
  }
  state.SetComplexityN(in.NumRows());
}
BENCHMARK(BM_Lambda)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oN);

void BM_Gamma(benchmark::State& state) {
  Relation in = MakeInput(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalGamma(RelSet::Single(1), in));
  }
  state.SetComplexityN(in.NumRows());
}
BENCHMARK(BM_Gamma)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oN);

void BM_Beta(benchmark::State& state) {
  Relation joined = MakeInput(state.range(0));
  // Nullified copies make best-match non-trivial.
  Relation in = EvalLambda(EquiJoin(0, "b", 1, "b", "q"), RelSet::Single(1),
                           joined);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalBeta(in));
  }
  state.SetComplexityN(in.NumRows());
}
BENCHMARK(BM_Beta)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oNLogN);

void BM_GammaStar(benchmark::State& state) {
  Relation in = MakeInput(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvalGammaStar(RelSet::Single(1), RelSet::Single(0), in));
  }
  state.SetComplexityN(in.NumRows());
}
BENCHMARK(BM_GammaStar)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oNLogN);

void BM_BetaSorted(benchmark::State& state) {
  Relation joined = MakeInput(state.range(0));
  Relation in = EvalLambda(EquiJoin(0, "b", 1, "b", "q"), RelSet::Single(1),
                           joined);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalBetaSorted(in));
  }
  state.SetComplexityN(in.NumRows());
}
BENCHMARK(BM_BetaSorted)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oNLogN);

void BM_BetaNaiveReference(benchmark::State& state) {
  Relation joined = MakeInput(state.range(0));
  Relation in = EvalLambda(EquiJoin(0, "b", 1, "b", "q"), RelSet::Single(1),
                           joined);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalBetaNaive(in));
  }
  state.SetComplexityN(in.NumRows());
}
BENCHMARK(BM_BetaNaiveReference)
    ->Range(1 << 8, 1 << 11)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace eca

BENCHMARK_MAIN();
