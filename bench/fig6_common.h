#ifndef ECA_BENCH_FIG6_COMMON_H_
#define ECA_BENCH_FIG6_COMMON_H_

// Shared harness for regenerating Figure 6 (and Appendix F): executes the
// PostgreSQL-style plan (best plan reachable with valid transformations
// only, i.e. the TBA policy) against the ECA plan (the compensated
// reordering that evaluates Supplier x Partsupp first) over the f12
// selectivity sweep, at three database scales standing in for the paper's
// 1 / 10 / 100 GB TPC-H instances.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "enumerate/enumerator.h"
#include "enumerate/realize.h"
#include "enumerate/subtree.h"
#include "exec/executor.h"
#include "tpch/paper_queries.h"

namespace eca {
namespace bench {

inline double TimePlanMs(const Plan& plan, const Database& db,
                         Executor::JoinPreference pref, int iters) {
  double best = 1e300;
  Executor::Options opts;
  opts.join_preference = pref;
  for (int i = 0; i < iters; ++i) {
    Executor ex(opts);
    auto t0 = std::chrono::steady_clock::now();
    Relation out = ex.Execute(plan, db);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
    (void)out;
  }
  return best;
}

// Builds the ordering tree (((R1,R2),R4...),R3) that evaluates the
// supplier-partsupp join first — the plan shape Figure 5 derives for each
// query via Table 3's rules.
inline OrderingNodePtr EcaTargetOrdering(int num_rels) {
  auto leaf = [](int id) {
    auto n = std::make_shared<OrderingNode>();
    n->rels = RelSet::Single(id);
    return OrderingNodePtr(n);
  };
  auto pair = [](OrderingNodePtr l, OrderingNodePtr r) {
    auto n = std::make_shared<OrderingNode>();
    n->rels = l->rels.Union(r->rels);
    if (l->rels.Min() <= r->rels.Min()) {
      n->left = std::move(l);
      n->right = std::move(r);
    } else {
      n->left = std::move(r);
      n->right = std::move(l);
    }
    return OrderingNodePtr(n);
  };
  // (R1,R2) first; then lineitem, then orders; part (the antijoin pruning
  // side) last.
  OrderingNodePtr acc = pair(leaf(kSupplier), leaf(kPartsupp));
  if (num_rels >= 4) acc = pair(acc, leaf(kLineitem));
  if (num_rels >= 5) acc = pair(acc, leaf(kOrders));
  return pair(acc, leaf(kPart));
}

struct SweepConfig {
  const char* figure;           // e.g. "Figure 6(a)-(c)"
  int which_query;              // 1, 2, 3
  Executor::JoinPreference pref = Executor::JoinPreference::kHash;
  int iters = 3;
  std::vector<double> scale_factors = {0.002, 0.006, 0.02};
  std::vector<const char*> scale_labels = {"1GB-analog", "10GB-analog",
                                           "100GB-analog"};
  std::vector<double> nus = {0, 5, 50, 200, 1000, 5000};
};

inline int RunFig6Sweep(const SweepConfig& cfg) {
  std::printf("==== %s: query Q%d, plans P^pg (TBA-valid transforms) vs "
              "P^ECA (compensated reordering) ====\n",
              cfg.figure, cfg.which_query);
  std::printf("(engine: %s joins; best of %d runs)\n\n",
              cfg.pref == Executor::JoinPreference::kHash ? "hash"
                                                          : "sort-merge",
              cfg.iters);
  double overall_max_speedup = 0;
  for (size_t si = 0; si < cfg.scale_factors.size(); ++si) {
    double sf = cfg.scale_factors[si];
    TpchData data = GenerateTpch(TpchScale::OfSF(sf), 42 + si);
    double max_speedup = 0;
    std::printf("-- %s (SF %.3f: %lld supplier, %lld partsupp, %lld "
                "lineitem rows)\n",
                cfg.scale_labels[si], sf,
                static_cast<long long>(data.supplier.NumRows()),
                static_cast<long long>(data.partsupp.NumRows()),
                static_cast<long long>(data.lineitem.NumRows()));
    std::printf("%10s %8s %12s %12s %9s   %s\n", "nu", "f12", "t_PG(ms)",
                "t_ECA(ms)", "speedup", "cost-based choice");
    bool printed_plans = false;
    for (double nu : cfg.nus) {
      PaperQuery q = cfg.which_query == 1   ? BuildQ1(data, nu)
                     : cfg.which_query == 2 ? BuildQ2(data, nu)
                                            : BuildQ3(data, nu);
      double f12 = MeasureF12(q.db, nu);

      // P^pg: best plan using valid transformations only.
      CostModel cost = CostModel::FromDatabase(q.db);
      EnumeratorOptions tba_opts;
      tba_opts.policy = SwapPolicy::kTBA;
      tba_opts.reuse_subplans = true;
      TopDownEnumerator tba(&cost, tba_opts);
      auto pg = tba.Optimize(*q.plan);

      // P^ECA: the compensated reordering from Figure 5.
      OrderingNodePtr theta = EcaTargetOrdering(q.plan->leaves().Count());
      PlanPtr eca = RealizeOrdering(*q.plan, *theta, SwapPolicy::kECA);
      if (eca == nullptr) {
        std::printf("!! ECA reordering unexpectedly infeasible\n");
        return 1;
      }
      if (!printed_plans) {
        std::printf("P^pg plan:\n%sP^ECA plan:\n%s\n",
                    pg.plan->ToInlineString().append("\n").c_str(),
                    eca->ToInlineString().append("\n").c_str());
        printed_plans = true;
      }
      double t_pg = TimePlanMs(*pg.plan, q.db, cfg.pref, cfg.iters);
      double t_eca = TimePlanMs(*eca, q.db, cfg.pref, cfg.iters);
      double speedup = t_eca > 0 ? t_pg / t_eca : 0;
      if (speedup > max_speedup) max_speedup = speedup;
      // What the cost-based ECA optimizer itself would pick at this nu.
      EnumeratorOptions eca_opts;
      TopDownEnumerator eca_enum(&cost, eca_opts);
      auto eca_choice = eca_enum.Optimize(*q.plan);
      bool picked_reordered =
          OrderingKey(*eca_choice.plan) == OrderingKey(*eca);
      std::printf("%10.0f %8.3f %12.2f %12.2f %8.2fx   %s\n", nu, f12,
                  t_pg, t_eca, speedup,
                  picked_reordered ? "eca-opt: reordered" : "eca-opt: direct");
    }
    std::printf("max speedup at %s: %.2fx\n\n", cfg.scale_labels[si],
                max_speedup);
    if (max_speedup > overall_max_speedup) overall_max_speedup = max_speedup;
  }
  std::printf("overall max speedup: %.2fx\n", overall_max_speedup);
  return 0;
}

}  // namespace bench
}  // namespace eca

#endif  // ECA_BENCH_FIG6_COMMON_H_
