// E14: resource-governor spill overhead on the Figure 6 workload.
//
// Executes the direct and compensated-reordered (ECA) plans for paper
// query Q2 under three memory budgets:
//
//   in-memory   ungoverned Execute() — the baseline the spilled runs must
//               match row for row
//   unlimited   governed, no limits: pure accounting overhead (tracker
//               charges, deadline checks), nothing spills
//   soft-spill  tiny soft threshold, no hard limit: every hash join
//               escalates to a grace join and beta/gamma* sort externally
//   near-hard   same soft threshold plus a hard limit ~1.5x the spilled
//               run's high-water mark: the governor must still finish
//
// Results go to BENCH_spill.json (see EXPERIMENTS.md, E14). The exit code
// reflects only the identity checks (spilled output == in-memory output)
// and unexpected Status failures — never timings.
//
// Usage: bench_spill [sf] [nu] [iters] [json_path]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/query_context.h"
#include "fig6_common.h"
#include "storage/relation.h"

namespace eca {
namespace {

struct BudgetRow {
  const char* mode = "";
  const char* plan = "";
  double wall_ms = 0;
  int64_t rows = 0;
  ExecStats stats;
  bool identical = false;
};

constexpr int64_t kSoftBytes = 64 << 10;  // forces spilling on every build

bool Identical(const Relation& a, const Relation& b) {
  if (a.NumRows() != b.NumRows()) return false;
  if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (CompareTuples(a.rows()[i], b.rows()[i]) != 0) return false;
  }
  return true;
}

// Best-of-iters governed execution; the stats/rows of the fastest run win.
StatusOr<Relation> TimeGoverned(const Plan& plan, const Database& db,
                                const QueryContext::Limits& limits, int iters,
                                BudgetRow* row) {
  StatusOr<Relation> out = Status::Internal("bench_spill: no runs");
  row->wall_ms = 1e300;
  for (int i = 0; i < iters; ++i) {
    QueryContext ctx(limits);
    Executor ex;
    auto t0 = std::chrono::steady_clock::now();
    StatusOr<Relation> got = ex.ExecuteWithContext(plan, db, &ctx);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < row->wall_ms) {
      row->wall_ms = ms;
      row->stats = ex.stats();
      out = std::move(got);
    }
  }
  return out;
}

int Run(double sf, double nu, int iters, const std::string& json_path) {
  TpchData data = GenerateTpch(TpchScale::OfSF(sf), 42);
  PaperQuery q = BuildQ2(data, nu);
  std::printf("==== E14: governed execution of Q2 at SF %.3f, nu %.0f ====\n",
              sf, nu);

  // The two plan shapes of Figure 6: the query as written and the
  // compensated reordering that evaluates supplier x partsupp first.
  OrderingNodePtr theta = bench::EcaTargetOrdering(q.plan->leaves().Count());
  PlanPtr eca = RealizeOrdering(*q.plan, *theta, SwapPolicy::kECA);
  if (eca == nullptr) {
    std::printf("!! ECA reordering unexpectedly infeasible\n");
    return 1;
  }
  struct NamedPlan {
    const char* name;
    const Plan* plan;
  };
  std::vector<NamedPlan> plans = {{"direct", q.plan.get()},
                                  {"eca-reordered", eca.get()}};

  std::vector<BudgetRow> rows;
  int failures = 0;
  for (const NamedPlan& np : plans) {
    // Baseline: ungoverned in-memory execution, also the identity oracle.
    Relation oracle;
    BudgetRow base;
    base.mode = "in-memory";
    base.plan = np.name;
    base.wall_ms = 1e300;
    for (int i = 0; i < iters; ++i) {
      Executor ex;
      auto t0 = std::chrono::steady_clock::now();
      Relation out = ex.Execute(*np.plan, q.db);
      auto t1 = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (ms < base.wall_ms) {
        base.wall_ms = ms;
        base.stats = ex.stats();
        oracle = std::move(out);
      }
    }
    base.rows = oracle.NumRows();
    base.identical = true;
    rows.push_back(base);

    struct Budget {
      const char* mode;
      QueryContext::Limits limits;
    };
    std::vector<Budget> budgets;
    budgets.push_back({"unlimited", {}});
    QueryContext::Limits soft;
    soft.mem_soft_bytes = kSoftBytes;
    budgets.push_back({"soft-spill", soft});

    for (size_t bi = 0; bi < budgets.size(); ++bi) {
      BudgetRow r;
      r.mode = budgets[bi].mode;
      r.plan = np.name;
      StatusOr<Relation> got =
          TimeGoverned(*np.plan, q.db, budgets[bi].limits, iters, &r);
      if (!got.ok()) {
        std::printf("!! %s/%s failed: %s\n", np.name, r.mode,
                    got.status().ToString().c_str());
        ++failures;
      } else {
        r.rows = got->NumRows();
        r.identical = Identical(*got, oracle);
        if (!r.identical) {
          std::printf("!! %s/%s output differs from in-memory run\n",
                      np.name, r.mode);
          ++failures;
        }
      }
      rows.push_back(r);
      // Derive the near-hard budget from the spilled run's high-water
      // mark: the governor must finish with ~1.5x that headroom.
      if (std::string(r.mode) == "soft-spill" && got.ok() &&
          r.stats.peak_bytes > 0) {
        QueryContext::Limits hard = budgets[bi].limits;
        hard.mem_limit_bytes = r.stats.peak_bytes + r.stats.peak_bytes / 2;
        budgets.push_back({"near-hard", hard});
      }
    }
  }

  std::printf("%14s %12s %10s %9s %7s %10s %12s %12s %6s\n", "plan", "mode",
              "wall(ms)", "rows", "spills", "runs", "write(B)", "read(B)",
              "peak");
  for (const BudgetRow& r : rows) {
    std::printf("%14s %12s %10.2f %9lld %7lld %10lld %12lld %12lld %6s\n",
                r.plan, r.mode, r.wall_ms, static_cast<long long>(r.rows),
                static_cast<long long>(r.stats.spilled_partitions),
                static_cast<long long>(r.stats.spilled_sort_runs),
                static_cast<long long>(r.stats.spill_bytes),
                static_cast<long long>(r.stats.spill_read_bytes),
                r.stats.peak_bytes > 0
                    ? std::to_string(r.stats.peak_bytes >> 10)
                          .append("K")
                          .c_str()
                    : "-");
  }

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"bench_spill\",\n");
    std::fprintf(out, "  \"workload\": \"fig6-q2\",\n");
    std::fprintf(out, "  \"sf\": %.4f,\n  \"nu\": %.1f,\n", sf, nu);
    std::fprintf(out, "  \"soft_bytes\": %lld,\n",
                 static_cast<long long>(kSoftBytes));
    std::fprintf(out, "  \"identity_pass\": %s,\n",
                 failures == 0 ? "true" : "false");
    std::fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const BudgetRow& r = rows[i];
      std::fprintf(
          out,
          "    {\"plan\": \"%s\", \"mode\": \"%s\", \"wall_ms\": %.3f, "
          "\"rows\": %lld, \"identical\": %s, \"peak_bytes\": %lld, "
          "\"spilled_partitions\": %lld, \"spilled_sort_runs\": %lld, "
          "\"spill_bytes\": %lld, \"spill_read_bytes\": %lld}%s\n",
          r.plan, r.mode, r.wall_ms, static_cast<long long>(r.rows),
          r.identical ? "true" : "false",
          static_cast<long long>(r.stats.peak_bytes),
          static_cast<long long>(r.stats.spilled_partitions),
          static_cast<long long>(r.stats.spilled_sort_runs),
          static_cast<long long>(r.stats.spill_bytes),
          static_cast<long long>(r.stats.spill_read_bytes),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("warning: could not write %s\n", json_path.c_str());
  }
  if (failures > 0) {
    std::printf("!! %d identity/Status failure(s)\n", failures);
    return 1;
  }
  std::printf("all spilled outputs identical to in-memory execution\n");
  return 0;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  double nu = argc > 2 ? std::atof(argv[2]) : 200;
  int iters = argc > 3 ? std::atoi(argv[3]) : 3;
  std::string json_path = argc > 4 ? argv[4] : "BENCH_spill.json";
  return eca::Run(sf, nu, iters, json_path);
}
