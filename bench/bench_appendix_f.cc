// Regenerates Appendix F: the same Q1-Q3 experiments on the second engine
// profile (sort-merge joins standing in for the commercial DBMS). The paper
// reports the same plan winners with larger factors (up to 6.14x).

#include "fig6_common.h"

int main(int argc, char** argv) {
  int iters = argc > 1 ? std::atoi(argv[1]) : 3;
  const char* figures[] = {"Appendix F / Q1", "Appendix F / Q2",
                           "Appendix F / Q3"};
  for (int q = 1; q <= 3; ++q) {
    eca::bench::SweepConfig cfg;
    cfg.figure = figures[q - 1];
    cfg.which_query = q;
    cfg.pref = eca::Executor::JoinPreference::kSortMerge;
    cfg.iters = iters;
    int rc = eca::bench::RunFig6Sweep(cfg);
    if (rc != 0) return rc;
  }
  return 0;
}
