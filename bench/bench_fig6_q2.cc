// Regenerates Figure 6(d)-(f): Q2 adds the Lineitem join. The paper
// reports P^ECA winning by up to 2.20x / 2.17x / 2.35x.

#include "fig6_common.h"

int main(int argc, char** argv) {
  eca::bench::SweepConfig cfg;
  cfg.figure = "Figure 6(d)-(f)";
  cfg.which_query = 2;
  if (argc > 1) cfg.iters = std::atoi(argv[1]);
  return eca::bench::RunFig6Sweep(cfg);
}
