#ifndef ECA_BENCH_RULE_BENCH_COMMON_H_
#define ECA_BENCH_RULE_BENCH_COMMON_H_

// Shared verification harness for the rule benches: executes a rule's LHS
// and RHS over randomized databases and reports the verdict plus rewrite /
// execution throughput, one row per rule — regenerating the paper's rule
// tables as machine-checked artifacts.

#include <chrono>
#include <cstdio>
#include <vector>

#include "exec/executor.h"
#include "rewrite/paper_rules.h"
#include "testing/random_data.h"

namespace eca {
namespace bench {

inline int VerifyRuleTable(const char* title,
                           const std::vector<PaperRule>& rules, int trials) {
  std::printf("==== %s (%d randomized trials per rule) ====\n", title,
              trials);
  std::printf("%5s  %-38s %9s %12s\n", "rule", "transformation", "verdict",
              "t/trial(us)");
  int failures = 0;
  for (const PaperRule& rule : rules) {
    bool sound = true;
    uint64_t bad_seed = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int trial = 0; trial < trials && sound; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 7907 +
              static_cast<uint64_t>(rule.number) * 101);
      RandomDataOptions opts;
      opts.max_rows = 8;
      Database db = RandomDatabase(rng, 3, opts);
      PredRef pa = RandomJoinPredicate(
          rng, RelSet::Single(rule.endpoints[0]),
          RelSet::Single(rule.endpoints[1]), opts, "pa");
      PredRef pb = RandomJoinPredicate(
          rng, RelSet::Single(rule.endpoints[2]),
          RelSet::Single(rule.endpoints[3]), opts, "pb");
      PlanPtr lhs = rule.lhs(pa, pb);
      PlanPtr rhs = rule.rhs(pa, pb);
      if (!PlansEquivalentOn(*lhs, *rhs, db)) {
        sound = false;
        bad_seed = static_cast<uint64_t>(trial);
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / trials;
    if (!sound) ++failures;
    std::printf("%5d  %-38s %9s %12.1f", rule.number,
                rule.transform.c_str(), sound ? "sound" : "UNSOUND!", us);
    if (!sound) std::printf("  (seed %llu)", (unsigned long long)bad_seed);
    std::printf("\n");
  }
  std::printf(failures == 0 ? "\nall rules verified.\n"
                            : "\n!! %d rules failed.\n",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace bench
}  // namespace eca

#endif  // ECA_BENCH_RULE_BENCH_COMMON_H_
