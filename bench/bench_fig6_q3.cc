// Regenerates Figure 6(g)-(i): Q3 adds the Orders join. The paper reports
// P^ECA winning by up to 2.20x / 2.45x / 2.84x, growing with scale.

#include "fig6_common.h"

int main(int argc, char** argv) {
  eca::bench::SweepConfig cfg;
  cfg.figure = "Figure 6(g)-(i)";
  cfg.which_query = 3;
  if (argc > 1) cfg.iters = std::atoi(argv[1]);
  return eca::bench::RunFig6Sweep(cfg);
}
