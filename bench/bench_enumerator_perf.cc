// Enumerator fast-path benchmark and identity gate (EXPERIMENTS.md E10).
//
// Runs the reference enumerator (the pre-fast-path algorithm, preserved in
// enum_reference.cc: whole-plan clone per decomposition, full-key memo, no
// pruning, no cost memo, sequential) against the production enumerator on
// the same random query population, and
//
//   1. asserts PLAN IDENTITY: with pruning and the cost memo on, the fast
//      enumerator must pick a plan with exactly the reference enumerator's
//      cost (bitwise double equality), and the plan must be byte-identical
//      across thread counts (fingerprint + rendered text);
//   2. measures the WORK REDUCTION: cloned plan nodes + cost-model
//      evaluations, the two quantities the fast path exists to avoid.
//
// The reference runs in both modes EXPERIMENTS.md E10 tabulates:
//   basic    — subplan reuse off (E10's "basic" column, the mode the
//              headline acceptance number is measured against);
//   enhanced — d-edge-guarded reuse on (the seed default), the harder
//              yardstick, reported alongside.
//
// The process exit code reflects the identity checks ONLY — performance
// numbers are reported, not gated, so the bench stays meaningful on slow
// or contended machines. Results are written to BENCH_enum.json.
//
// Usage: bench_enumerator_perf [queries_per_size] [max_rels] [ref_max_rels]
//                              [json_path] [basic_max_rels]
//
// The reference enumerator is exponential without pruning, so it only runs
// up to ref_max_rels (default 8; the reuse-free basic mode stops at
// basic_max_rels, default 7); above that the fast enumerator runs alone
// (thread-count identity still checked) to show 9- and 10-relation queries
// complete.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "enum_reference.h"
#include "enumerate/enumerator.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

struct SizeRow {
  int rels = 0;
  int queries = 0;
  bool ref_ran = false;
  bool basic_ran = false;
  double ref_ms = 0;
  int64_t ref_clones = 0;
  int64_t ref_cost_evals = 0;
  int64_t ref_calls = 0;
  int64_t ref_reuses = 0;
  double basic_ms = 0;
  int64_t basic_clones = 0;
  int64_t basic_cost_evals = 0;
  int64_t basic_calls = 0;
  int64_t fast_calls = 0;
  double fast_ms_t1 = 0;
  double fast_ms_t4 = 0;
  // Phase breakdown of the fast path (EnumeratorStats::phase_*_us): the
  // sequential leader prefix vs the barrier-free follower pass.
  double fast_leader_ms_t1 = 0;
  double fast_followers_ms_t1 = 0;
  double fast_leader_ms_t4 = 0;
  double fast_followers_ms_t4 = 0;
  int64_t fast_clones = 0;
  int64_t fast_cost_evals = 0;
  int64_t fast_prunes = 0;
  int64_t fast_memo_hits = 0;
  int64_t fast_reuses = 0;
  int basic_budget_exceeded = 0;  // queries where capped basic gave up
  int fast_budget_completed = 0;  // queries fast finished within the cap

  int64_t RefWork() const { return ref_clones + ref_cost_evals; }
  int64_t BasicWork() const { return basic_clones + basic_cost_evals; }
  int64_t FastWork() const { return fast_clones + fast_cost_evals; }
  double WorkReductionBasic() const {
    return FastWork() > 0 ? static_cast<double>(BasicWork()) / FastWork()
                          : 0.0;
  }
  double WorkReductionEnhanced() const {
    return FastWork() > 0 ? static_cast<double>(RefWork()) / FastWork() : 0.0;
  }
};

// The "default budget" the acceptance claim is phrased against: a cap on
// GenerateSubplan invocations per query, sized so the E10-era workloads fit
// with ample headroom (the pre-fast-path basic search needs ~1.5k calls per
// 7-relation query) but 10-relation queries did not fit before this work.
// The bench runs the reference with this cap to show where it gives up, and
// the fast enumerator under the same cap to show it completes undegraded
// with the identical plan.
constexpr int64_t kDefaultCallBudget = 10000;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int Run(int queries, int max_rels, int ref_max_rels, int basic_max_rels,
        const std::string& json_path) {
  std::printf("==== Enumerator fast path vs reference (identity + work) "
              "====\n");
  std::printf("%5s %8s | %12s %12s | %10s %10s %12s | %8s %8s | %8s %8s\n",
              "rels", "queries", "basic work", "enh work", "fast ms", "t4 ms",
              "fast work", "red/bas", "red/enh", "prunes", "memo");

  int failures = 0;
  std::vector<SizeRow> rows;
  for (int n = 4; n <= max_rels; ++n) {
    SizeRow row;
    row.rels = n;
    row.queries = queries;
    row.ref_ran = n <= ref_max_rels;
    row.basic_ran = n <= basic_max_rels;
    for (int qi = 0; qi < queries; ++qi) {
      Rng rng(static_cast<uint64_t>(n) * 1009 +
              static_cast<uint64_t>(qi) * 13);
      RandomDataOptions dopts;
      RandomQueryOptions qopts;
      qopts.num_rels = n;
      Database db = RandomDatabase(rng, n, dopts);
      PlanPtr query = RandomQuery(rng, qopts, dopts);
      CostModel cost = CostModel::FromDatabase(db);

      bool have_ref = false;
      double ref_cost = 0;
      if (row.ref_ran) {
        ReferenceEnumerator ref(&cost, SwapPolicy::kECA);
        auto t0 = std::chrono::steady_clock::now();
        auto r = ref.Optimize(*query);
        row.ref_ms += MsSince(t0);
        row.ref_clones += r.stats.cloned_nodes;
        row.ref_cost_evals += r.stats.cost_evals;
        row.ref_calls += r.stats.subplan_calls;
        row.ref_reuses += r.stats.reuses;
        ref_cost = r.cost;
        have_ref = true;
      }
      if (row.basic_ran) {
        ReferenceEnumerator basic(&cost, SwapPolicy::kECA,
                                  /*reuse_subplans=*/false);
        auto t0 = std::chrono::steady_clock::now();
        auto b = basic.Optimize(*query);
        row.basic_ms += MsSince(t0);
        row.basic_clones += b.stats.cloned_nodes;
        row.basic_cost_evals += b.stats.cost_evals;
        row.basic_calls += b.stats.subplan_calls;
        if (have_ref && b.cost != ref_cost) {
          std::printf("IDENTITY FAIL: rels=%d query=%d basic reference cost "
                      "%.17g != enhanced reference cost %.17g\n",
                      n, qi, b.cost, ref_cost);
          ++failures;
        }
      }

      EnumeratorOptions fast;  // defaults: prune + cost memo + reuse, t=1
      TopDownEnumerator e1(&cost, fast);
      auto t0 = std::chrono::steady_clock::now();
      auto f1 = e1.Optimize(*query);
      row.fast_ms_t1 += MsSince(t0);
      row.fast_clones += f1.stats.cloned_nodes;
      row.fast_cost_evals += f1.stats.cost_evals;
      row.fast_calls += f1.stats.subplan_calls;
      row.fast_prunes += f1.stats.prunes;
      row.fast_memo_hits += f1.stats.cost_memo_hits;
      row.fast_reuses += f1.stats.reuses;
      row.fast_leader_ms_t1 += f1.stats.phase_leader_us / 1000.0;
      row.fast_followers_ms_t1 += f1.stats.phase_followers_us / 1000.0;

      if (have_ref && f1.cost != ref_cost) {
        std::printf("IDENTITY FAIL: rels=%d query=%d fast cost %.17g != "
                    "reference cost %.17g\n",
                    n, qi, f1.cost, ref_cost);
        ++failures;
      }

      EnumeratorOptions par = fast;
      par.num_threads = 4;
      TopDownEnumerator e4(&cost, par);
      t0 = std::chrono::steady_clock::now();
      auto f4 = e4.Optimize(*query);
      row.fast_ms_t4 += MsSince(t0);
      row.fast_leader_ms_t4 += f4.stats.phase_leader_us / 1000.0;
      row.fast_followers_ms_t4 += f4.stats.phase_followers_us / 1000.0;
      if (f4.cost != f1.cost ||
          PlanFingerprint(*f4.plan) != PlanFingerprint(*f1.plan) ||
          f4.plan->ToString() != f1.plan->ToString()) {
        std::printf("IDENTITY FAIL: rels=%d query=%d threads=4 plan differs "
                    "from threads=1\n",
                    n, qi);
        ++failures;
      }

      // The default-budget demonstration. The fast enumerator must finish
      // inside the cap, undegraded, with the identical plan; where the full
      // basic reference was skipped as intractable, the capped run shows it
      // exhausting the same budget.
      EnumeratorOptions budgeted = fast;
      budgeted.budget.max_enumerated_nodes = kDefaultCallBudget;
      TopDownEnumerator eb(&cost, budgeted);
      auto fb = eb.Optimize(*query);
      if (!fb.stats.degraded && fb.cost == f1.cost &&
          PlanFingerprint(*fb.plan) == PlanFingerprint(*f1.plan)) {
        ++row.fast_budget_completed;
      } else if (!fb.stats.degraded) {
        // An untripped budget must never change the plan, at any size.
        std::printf("IDENTITY FAIL: rels=%d query=%d plan diverged under an "
                    "untripped budget\n",
                    n, qi);
        ++failures;
      } else if (n <= 10) {
        // The acceptance claim covers completion through 10 relations;
        // beyond that, exhausting the default budget is reported but is
        // not a failure.
        std::printf("BUDGET FAIL: rels=%d query=%d fast enumerator "
                    "exhausted the default %lld-call budget\n",
                    n, qi, static_cast<long long>(kDefaultCallBudget));
        ++failures;
      }
      if (!row.basic_ran) {
        ReferenceEnumerator capped(&cost, SwapPolicy::kECA,
                                   /*reuse_subplans=*/false,
                                   kDefaultCallBudget);
        auto c = capped.Optimize(*query);
        if (c.stats.call_capped) ++row.basic_budget_exceeded;
      }
    }

    char basic_work[32], enh_work[32], red_bas[16], red_enh[16];
    if (row.basic_ran) {
      std::snprintf(basic_work, sizeof(basic_work), "%lld",
                    static_cast<long long>(row.BasicWork()));
      std::snprintf(red_bas, sizeof(red_bas), "%.1fx",
                    row.WorkReductionBasic());
    } else {
      std::snprintf(basic_work, sizeof(basic_work), "-");
      std::snprintf(red_bas, sizeof(red_bas), "-");
    }
    if (row.ref_ran) {
      std::snprintf(enh_work, sizeof(enh_work), "%lld",
                    static_cast<long long>(row.RefWork()));
      std::snprintf(red_enh, sizeof(red_enh), "%.1fx",
                    row.WorkReductionEnhanced());
    } else {
      std::snprintf(enh_work, sizeof(enh_work), "-");
      std::snprintf(red_enh, sizeof(red_enh), "-");
    }
    std::printf("%5d %8d | %12s %12s | %10.1f %10.1f %12lld | %8s %8s | "
                "%8lld %8lld\n",
                n, queries, basic_work, enh_work, row.fast_ms_t1,
                row.fast_ms_t4, static_cast<long long>(row.FastWork()),
                red_bas, red_enh, static_cast<long long>(row.fast_prunes),
                static_cast<long long>(row.fast_memo_hits));
    rows.push_back(row);
  }

  for (const SizeRow& row : rows) {
    if (row.rels == 7 && row.basic_ran) {
      std::printf("\n7-relation work reduction (clones + costings) vs the "
                  "E10 basic baseline: %.1fx (acceptance floor 5x)\n",
                  row.WorkReductionBasic());
      if (row.ref_ran) {
        std::printf("7-relation work reduction vs the enhanced (reuse-on) "
                    "reference: %.1fx (informational)\n",
                    row.WorkReductionEnhanced());
      }
    }
  }
  for (const SizeRow& row : rows) {
    if (!row.basic_ran) {
      std::printf("%d relations: basic reference exceeded the default "
                  "%lld-call budget on %d/%d queries; fast completed "
                  "%d/%d within it (undegraded, identical plans)\n",
                  row.rels, static_cast<long long>(kDefaultCallBudget),
                  row.basic_budget_exceeded, row.queries,
                  row.fast_budget_completed, row.queries);
    }
  }
  std::printf("identity checks: %s\n", failures == 0 ? "PASS" : "FAIL");

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"bench_enumerator_perf\",\n");
    std::fprintf(out, "  \"work_metric\": \"cloned_nodes + cost_evals\",\n");
    std::fprintf(out,
                 "  \"baselines\": {\"basic\": \"reference, subplan reuse "
                 "off (E10 basic column; acceptance anchor)\", \"enhanced\": "
                 "\"reference, d-edge-guarded reuse on (seed default)\"},\n");
    std::fprintf(out, "  \"default_call_budget\": %lld,\n",
                 static_cast<long long>(kDefaultCallBudget));
    std::fprintf(out, "  \"identity_pass\": %s,\n",
                 failures == 0 ? "true" : "false");
    std::fprintf(out, "  \"rows\": [\n");
    // Reference columns for a size the reference did not run at are JSON
    // null, never a fabricated 0.00 — a 0 work_reduction reads as "the
    // fast path did infinitely more work", and tools/bench_check.py would
    // have to special-case it forever.
    auto opt_f = [](char* buf, size_t len, bool ran, double v) -> const char* {
      if (!ran) return "null";
      std::snprintf(buf, len, "%.2f", v);
      return buf;
    };
    auto opt_i = [](char* buf, size_t len, bool ran, int64_t v) -> const char* {
      if (!ran) return "null";
      std::snprintf(buf, len, "%lld", static_cast<long long>(v));
      return buf;
    };
    for (size_t i = 0; i < rows.size(); ++i) {
      const SizeRow& r = rows[i];
      char b[12][32];
      std::fprintf(
          out,
          "    {\"rels\": %d, \"queries\": %d, \"ref_ran\": %s, "
          "\"basic_ran\": %s, "
          "\"ref_ms\": %s, \"ref_cloned_nodes\": %s, "
          "\"ref_cost_evals\": %s, \"ref_subplan_calls\": %s, "
          "\"ref_reuses\": %s, "
          "\"basic_ms\": %s, \"basic_cloned_nodes\": %s, "
          "\"basic_cost_evals\": %s, \"basic_subplan_calls\": %s, "
          "\"fast_ms_t1\": %.2f, "
          "\"fast_ms_t4\": %.2f, "
          "\"fast_leader_ms_t1\": %.2f, \"fast_followers_ms_t1\": %.2f, "
          "\"fast_leader_ms_t4\": %.2f, \"fast_followers_ms_t4\": %.2f, "
          "\"fast_cloned_nodes\": %lld, "
          "\"fast_cost_evals\": %lld, \"fast_subplan_calls\": %lld, "
          "\"fast_prunes\": %lld, "
          "\"fast_cost_memo_hits\": %lld, \"fast_reuses\": %lld, "
          "\"basic_budget_exceeded\": %d, \"fast_budget_completed\": %d, "
          "\"work_reduction\": %s, \"work_reduction_enhanced\": %s}%s\n",
          r.rels, r.queries, r.ref_ran ? "true" : "false",
          r.basic_ran ? "true" : "false",
          opt_f(b[0], sizeof(b[0]), r.ref_ran, r.ref_ms),
          opt_i(b[1], sizeof(b[1]), r.ref_ran, r.ref_clones),
          opt_i(b[2], sizeof(b[2]), r.ref_ran, r.ref_cost_evals),
          opt_i(b[3], sizeof(b[3]), r.ref_ran, r.ref_calls),
          opt_i(b[4], sizeof(b[4]), r.ref_ran, r.ref_reuses),
          opt_f(b[5], sizeof(b[5]), r.basic_ran, r.basic_ms),
          opt_i(b[6], sizeof(b[6]), r.basic_ran, r.basic_clones),
          opt_i(b[7], sizeof(b[7]), r.basic_ran, r.basic_cost_evals),
          opt_i(b[8], sizeof(b[8]), r.basic_ran, r.basic_calls),
          r.fast_ms_t1, r.fast_ms_t4, r.fast_leader_ms_t1,
          r.fast_followers_ms_t1, r.fast_leader_ms_t4,
          r.fast_followers_ms_t4, static_cast<long long>(r.fast_clones),
          static_cast<long long>(r.fast_cost_evals),
          static_cast<long long>(r.fast_calls),
          static_cast<long long>(r.fast_prunes),
          static_cast<long long>(r.fast_memo_hits),
          static_cast<long long>(r.fast_reuses),
          r.basic_budget_exceeded, r.fast_budget_completed,
          opt_f(b[9], sizeof(b[9]), r.basic_ran, r.WorkReductionBasic()),
          opt_f(b[10], sizeof(b[10]), r.ref_ran, r.WorkReductionEnhanced()),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("warning: could not write %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int queries = argc > 1 ? std::atoi(argv[1]) : 10;
  int max_rels = argc > 2 ? std::atoi(argv[2]) : 10;
  int ref_max_rels = argc > 3 ? std::atoi(argv[3]) : 8;
  std::string json_path = argc > 4 ? argv[4] : "BENCH_enum.json";
  int basic_max_rels = argc > 5 ? std::atoi(argv[5]) : 7;
  return eca::Run(queries, max_rels, ref_max_rels, basic_max_rels, json_path);
}
