// Differential soak run: random queries cross-checked along every axis the
// library offers —
//   * optimizer policies (ECA / TBA / CBA, basic and enhanced enumeration)
//   * both engines (materializing hash, sort-merge) and the pull engine
//   * every realizable ordering of each query
// Every produced plan must evaluate to the same multiset as the query as
// written. This is the capstone end-to-end validation; run it with a large
// query count for soak testing.
//
// Usage: bench_differential [queries] [max_rels] [check_all_orderings 0/1]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "enumerate/enumerator.h"
#include "enumerate/join_order.h"
#include "enumerate/realize.h"
#include "exec/iterator_exec.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

int Run(int queries, int max_rels, bool all_orderings) {
  int64_t plans_checked = 0, failures = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int seed = 0; seed < queries; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 6151 + 29);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 3 + seed % (max_rels - 2);
    qopts.allow_full_outer = seed % 3 == 0;
    qopts.tolerant_pred_prob = seed % 5 == 0 ? 0.4 : 0.0;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    Executor reference_engine;
    Relation reference =
        CanonicalizeColumnOrder(reference_engine.Execute(*query, db));

    auto check = [&](const Plan& plan, const char* what) {
      // Materializing hash engine.
      Executor hash_engine;
      ++plans_checked;
      if (!SameMultiset(reference, CanonicalizeColumnOrder(
                                       hash_engine.Execute(plan, db)))) {
        ++failures;
        std::printf("!! %s (hash) wrong on seed %d\n%s", what, seed,
                    plan.ToString().c_str());
        return;
      }
      // Sort-merge engine.
      Executor::Options smj_opts;
      smj_opts.join_preference = Executor::JoinPreference::kSortMerge;
      Executor smj_engine(smj_opts);
      ++plans_checked;
      if (!SameMultiset(reference, CanonicalizeColumnOrder(
                                       smj_engine.Execute(plan, db)))) {
        ++failures;
        std::printf("!! %s (sort-merge) wrong on seed %d\n", what, seed);
        return;
      }
      // Pull engine.
      ++plans_checked;
      if (!SameMultiset(reference,
                        CanonicalizeColumnOrder(ExecutePull(plan, db)))) {
        ++failures;
        std::printf("!! %s (pull) wrong on seed %d\n", what, seed);
      }
    };

    CostModel cost = CostModel::FromDatabase(db);
    for (SwapPolicy policy :
         {SwapPolicy::kECA, SwapPolicy::kTBA, SwapPolicy::kCBA}) {
      for (bool reuse : {false, true}) {
        EnumeratorOptions opts;
        opts.policy = policy;
        opts.reuse_subplans = reuse;
        TopDownEnumerator e(&cost, opts);
        auto result = e.Optimize(*query);
        if (result.plan != nullptr) check(*result.plan, "optimizer plan");
      }
    }
    if (all_orderings) {
      for (const OrderingNodePtr& theta : AllJoinOrderingTrees(
               query->leaves(), PredicateRefSets(*query))) {
        PlanPtr plan = RealizeOrdering(*query, *theta, SwapPolicy::kECA);
        if (plan != nullptr) check(*plan, "realized ordering");
      }
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  std::printf("differential soak: %lld plan executions cross-checked over "
              "%d queries in %.1f s — %lld failures\n",
              static_cast<long long>(plans_checked), queries,
              std::chrono::duration<double>(t1 - t0).count(),
              static_cast<long long>(failures));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace eca

int main(int argc, char** argv) {
  int queries = argc > 1 ? std::atoi(argv[1]) : 60;
  int max_rels = argc > 2 ? std::atoi(argv[2]) : 5;
  bool all_orderings = argc > 3 ? std::atoi(argv[3]) != 0 : true;
  return eca::Run(queries, max_rels, all_orderings);
}
