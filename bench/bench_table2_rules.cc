// Regenerates Table 2 (Theorem 4.2): the 13 rewriting rules for
// interchanging gamma / gamma* with conventional join operators, verified
// by randomized execution. The rule forms are reconstructed from the
// paper's definitions and the Appendix A proof of Rule 3 (see
// paper_rules.cc).

#include <cstdlib>

#include "rule_bench_common.h"

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 200;
  return eca::bench::VerifyRuleTable(
      "Table 2: gamma/gamma* interchange rules (Theorem 4.2)",
      eca::PaperTable2Rules(), trials);
}
