// Crash-safe plan-cache persistence (storage/cache_store.h): the binary
// entry codec round-trips every plan/predicate/scalar shape, snapshots
// and append logs warm a fresh memo byte-for-byte, and — the robustness
// contract — a cache file truncated at EVERY byte offset or flipped at
// arbitrary bits loads-or-degrades but never crashes, never fails the
// daemon, and never unbalances the memory tracker.

#include "storage/cache_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algebra/comp_op.h"
#include "algebra/plan.h"
#include "common/memory_tracker.h"
#include "enumerate/shared_memo.h"
#include "exec/database.h"
#include "rewrite/rules.h"
#include "testing/fault_injection.h"

#include "../test_util.h"

namespace eca {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const char* tag) {
  std::string dir = (fs::temp_directory_path() /
                     (std::string("eca-cache-store-") + tag))
                        .string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

MemoExtKey ExtKey(const std::string& src, const std::string& a,
                  const std::string& b) {
  MemoExtKey key;
  key.src = src;
  key.a = a;
  key.b = b;
  key.src_hash = PredNameInterner::NameHash(src);
  key.a_hash = PredNameInterner::NameHash(a);
  key.b_hash = PredNameInterner::NameHash(b);
  return key;
}

// A plan exercising every codec branch: all three node kinds, every
// predicate kind (compare, and, or, not, const-bool, is-null,
// all-null-block), labeled predicates, and scalars with arithmetic and
// constants of every type including NULLs.
PlanPtr RichPlan() {
  ScalarRef col0 = Scalar::Column(0, "a");
  ScalarRef col1 = Scalar::Column(1, "b");
  ScalarRef sum = Scalar::Arith(Scalar::ArithOp::kAdd, col0,
                                Scalar::Const(Value::Int(41)));
  PredRef cmp = Predicate::WithLabel(
      Predicate::Compare(Predicate::CmpOp::kLe, sum, col1), "p01");
  PredRef ors = Predicate::Or(
      {Predicate::IsNull(Scalar::Column(1, "b")),
       Predicate::Compare(
           Predicate::CmpOp::kNe,
           Scalar::Arith(Scalar::ArithOp::kMul, col1,
                         Scalar::Const(Value::Real(2.5))),
           Scalar::Const(Value::Str("x"))),
       Predicate::Not(Predicate::ConstBool(false))});
  PredRef with_null_const = Predicate::And(
      {cmp, ors,
       Predicate::Compare(Predicate::CmpOp::kEq,
                          Scalar::Const(Value::Null(DataType::kString)),
                          Scalar::Const(Value::Null(DataType::kDouble)))});
  PlanPtr join01 = Plan::Join(JoinOp::kFullOuter, with_null_const,
                              Plan::Leaf(0), Plan::Leaf(1));
  PlanPtr lambda = Plan::Comp(
      CompOp::Lambda(Predicate::WithLabel(Predicate::AllNull(RelSet::Single(1)),
                                          "allnull1"),
                     RelSet::Single(1)),
      std::move(join01));
  PlanPtr gs = Plan::Comp(
      CompOp::GammaStar(RelSet::Single(0), RelSet::Single(1)),
      std::move(lambda));
  PlanPtr beta = Plan::Comp(CompOp::Beta(), std::move(gs));
  PlanPtr join2 =
      Plan::Join(JoinOp::kLeftAnti,
                 Predicate::WithLabel(
                     Predicate::Compare(Predicate::CmpOp::kGt,
                                        Scalar::Column(2, "c"),
                                        Scalar::Column(0, "a")),
                     "p02"),
                 std::move(beta), Plan::Leaf(2));
  CompOp gamma = CompOp::Gamma(RelSet::Single(2));
  gamma.vnode = 3;
  PlanPtr g = Plan::Comp(std::move(gamma), std::move(join2));
  return Plan::Comp(
      CompOp::Project(RelSet::FirstN(3)),
      std::move(g));
}

std::shared_ptr<const MemoPayload> RichPayload() {
  auto payload = std::make_shared<MemoPayload>();
  payload->subtree = RichPlan();
  payload->s = payload->subtree->leaves();
  payload->query_fp = 0xdeadbeefcafef00dull;
  payload->policy = 2;
  payload->epoch = 0;
  payload->ext_keys = {ExtKey("p01", "la", "lb"), ExtKey("p02", "x", "y")};
  std::sort(payload->ext_keys.begin(), payload->ext_keys.end());
  payload->cost = 123.5;
  payload->dedges = {{"p01", "la", "lb", 2}, {"p02", "", "z", -1}};
  payload->next_vnode = 4;
  payload->bytes = 512;
  return payload;
}

// A small payload over a single leaf, distinguishable by `which`.
std::shared_ptr<const MemoPayload> LeafPayload(int which, double cost,
                                               uint64_t epoch = 0) {
  auto payload = std::make_shared<MemoPayload>();
  payload->subtree = Plan::Leaf(which);
  payload->s = RelSet::Single(which);
  payload->query_fp = 0x1000u + static_cast<uint64_t>(which);
  payload->epoch = epoch;
  payload->cost = cost;
  payload->bytes = 64;
  return payload;
}

MemoProbe ProbeFor(const MemoPayload& payload, uint64_t map_key) {
  MemoProbe probe;
  probe.map_key = map_key;
  probe.query_fp = payload.query_fp;
  probe.s = payload.s;
  probe.policy = payload.policy;
  probe.epoch = payload.epoch;
  probe.ext_keys = &payload.ext_keys;
  return probe;
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(CacheEntryCodecTest, RoundTripsEveryPlanAndPredicateShape) {
  auto payload = RichPayload();
  std::vector<unsigned char> bytes;
  EncodeCacheEntry(0xabcdef01u, *payload, &bytes);
  ASSERT_FALSE(bytes.empty());

  uint64_t map_key = 0;
  std::shared_ptr<const MemoPayload> decoded;
  Status s = DecodeCacheEntry(bytes.data(), bytes.size(), &map_key, &decoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(map_key, 0xabcdef01u);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->query_fp, payload->query_fp);
  EXPECT_EQ(decoded->s, payload->s);
  EXPECT_EQ(decoded->policy, payload->policy);
  EXPECT_EQ(decoded->epoch, payload->epoch);
  EXPECT_EQ(decoded->cost, payload->cost);
  EXPECT_EQ(decoded->next_vnode, payload->next_vnode);
  EXPECT_EQ(decoded->bytes, payload->bytes);
  ASSERT_EQ(decoded->ext_keys.size(), payload->ext_keys.size());
  for (size_t i = 0; i < payload->ext_keys.size(); ++i) {
    EXPECT_TRUE(decoded->ext_keys[i] == payload->ext_keys[i]) << i;
  }
  ASSERT_EQ(decoded->dedges.size(), payload->dedges.size());
  for (size_t i = 0; i < payload->dedges.size(); ++i) {
    EXPECT_EQ(decoded->dedges[i].src_pred, payload->dedges[i].src_pred);
    EXPECT_EQ(decoded->dedges[i].label_a, payload->dedges[i].label_a);
    EXPECT_EQ(decoded->dedges[i].label_b, payload->dedges[i].label_b);
    EXPECT_EQ(decoded->dedges[i].vnode, payload->dedges[i].vnode);
  }
  ASSERT_NE(decoded->subtree, nullptr);
  // The printed tree covers node kinds, operators, predicate labels and
  // structure — a byte-identical rendering is the round-trip proof.
  EXPECT_EQ(decoded->subtree->ToString(), payload->subtree->ToString());

  // The codec must also be a fixed point: re-encoding the decoded entry
  // yields the identical byte string (no drift across save/load cycles).
  std::vector<unsigned char> again;
  EncodeCacheEntry(map_key, *decoded, &again);
  EXPECT_EQ(again, bytes);
}

TEST(CacheEntryCodecTest, TruncatedOrFlippedEntriesNeverCrash) {
  auto payload = RichPayload();
  std::vector<unsigned char> bytes;
  EncodeCacheEntry(0x42u, *payload, &bytes);

  // Every truncation length: decode returns a Status (usually kDataLoss,
  // never a crash or unbounded allocation).
  for (size_t len = 0; len < bytes.size(); ++len) {
    uint64_t map_key = 0;
    std::shared_ptr<const MemoPayload> decoded;
    Status s = DecodeCacheEntry(bytes.data(), len, &map_key, &decoded);
    EXPECT_FALSE(s.ok()) << "truncation at " << len
                         << " decoded a partial entry";
  }
  // Single-bit flips at a byte stride: decode either fails cleanly or —
  // when the flip lands in a value that any bit pattern satisfies, like
  // a cost double — produces a structurally valid entry.
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit : {0, 7}) {
      std::vector<unsigned char> mutated = bytes;
      mutated[pos] ^= static_cast<unsigned char>(1u << bit);
      uint64_t map_key = 0;
      std::shared_ptr<const MemoPayload> decoded;
      Status s =
          DecodeCacheEntry(mutated.data(), mutated.size(), &map_key, &decoded);
      if (s.ok()) {
        ASSERT_NE(decoded, nullptr);
        ASSERT_NE(decoded->subtree, nullptr);
        EXPECT_TRUE(decoded->subtree->leaves() == decoded->s);
      }
    }
  }
}

TEST(CacheStoreTest, SnapshotRoundTripWarmsAFreshMemo) {
  std::string dir = TestDir("roundtrip");
  std::string path = dir + "/plan.cache";
  MemoryTracker root(0, 0);
  const uint64_t catalog_fp = 0x5eedu;

  auto rich = RichPayload();
  {
    SharedMemo::Config config;
    config.parent = &root;
    SharedMemo memo(config);
    uint64_t gen = memo.BeginQuery();
    memo.Pin();
    memo.Publish(101, rich, gen, true);
    memo.Publish(202, LeafPayload(1, 7.0), gen, true);
    memo.Publish(303, LeafPayload(2, 9.0), gen, true);
    memo.Unpin();
    CacheStore store(path);
    Status s = store.WriteSnapshot(&memo, catalog_fp);
    ASSERT_TRUE(s.ok()) << s.ToString();
    memo.Clear();
  }
  ASSERT_TRUE(fs::exists(path));
  EXPECT_EQ(root.used(), 0);

  SharedMemo::Config config;
  config.parent = &root;
  SharedMemo memo(config);
  CacheStore store(path);
  CacheStore::LoadResult load = store.Load(&memo, catalog_fp);
  EXPECT_EQ(load.loaded, 3);
  EXPECT_EQ(load.discarded, 0);
  EXPECT_FALSE(load.degraded) << load.detail;
  EXPECT_TRUE(load.snapshot_present);
  EXPECT_FALSE(load.log_present);
  EXPECT_EQ(root.used(), memo.used_bytes());

  // The warmed entries answer probes exactly like the originals.
  uint64_t gen = memo.BeginQuery();
  memo.Pin();
  MemoProbeStats stats;
  const MemoPayload* hit = memo.Find(ProbeFor(*rich, 101), gen, &stats);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, rich->cost);
  EXPECT_EQ(hit->subtree->ToString(), rich->subtree->ToString());
  memo.Unpin();
  memo.Clear();
  EXPECT_EQ(root.used(), 0);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheStoreTest, AppendNewPersistsOnlyNewEntries) {
  std::string dir = TestDir("append");
  std::string path = dir + "/plan.cache";
  const uint64_t catalog_fp = 0x5eedu;

  SharedMemo memo;
  CacheStore store(path);
  // Empty snapshot establishes the watermark and the snapshot file.
  ASSERT_TRUE(store.WriteSnapshot(&memo, catalog_fp).ok());

  uint64_t gen = memo.BeginQuery();
  memo.Pin();
  memo.Publish(11, LeafPayload(1, 7.0), gen, true);
  memo.Unpin();
  ASSERT_TRUE(store.AppendNew(&memo, catalog_fp).ok());
  ASSERT_TRUE(fs::exists(store.log_path()));
  uintmax_t after_first = fs::file_size(store.log_path());
  ASSERT_GT(after_first, 0u);

  // Nothing new: the log must not grow (no duplicate re-exports).
  ASSERT_TRUE(store.AppendNew(&memo, catalog_fp).ok());
  EXPECT_EQ(fs::file_size(store.log_path()), after_first);

  gen = memo.BeginQuery();
  memo.Pin();
  memo.Publish(22, LeafPayload(2, 9.0), gen, true);
  memo.Unpin();
  ASSERT_TRUE(store.AppendNew(&memo, catalog_fp).ok());
  EXPECT_GT(fs::file_size(store.log_path()), after_first);

  SharedMemo warmed;
  CacheStore loader(path);
  CacheStore::LoadResult load = loader.Load(&warmed, catalog_fp);
  EXPECT_EQ(load.loaded, 2);
  EXPECT_FALSE(load.degraded) << load.detail;
  EXPECT_TRUE(load.log_present);

  // A snapshot compacts: log gone, everything in the snapshot file.
  ASSERT_TRUE(store.WriteSnapshot(&memo, catalog_fp).ok());
  EXPECT_FALSE(fs::exists(store.log_path()));
  SharedMemo warmed2;
  CacheStore::LoadResult load2 = CacheStore(path).Load(&warmed2, catalog_fp);
  EXPECT_EQ(load2.loaded, 2);
  EXPECT_FALSE(load2.degraded) << load2.detail;

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// The ISSUE's acceptance sweep: truncate a real cache file at EVERY byte
// offset; each load must succeed or degrade — never crash, never fail,
// never leak tracker bytes — and a degraded load still imports the valid
// prefix.
TEST(CacheStoreTest, TruncationSweepAtEveryOffsetLoadsOrDegrades) {
  std::string dir = TestDir("truncate");
  std::string path = dir + "/plan.cache";
  const uint64_t catalog_fp = 0x5eedu;

  SharedMemo source;
  uint64_t gen = source.BeginQuery();
  source.Pin();
  source.Publish(101, RichPayload(), gen, true);
  source.Publish(202, LeafPayload(1, 7.0), gen, true);
  source.Publish(303, LeafPayload(2, 9.0), gen, true);
  source.Unpin();
  CacheStore writer(path);
  ASSERT_TRUE(writer.WriteSnapshot(&source, catalog_fp).ok());
  std::vector<unsigned char> full = ReadFileBytes(path);
  ASSERT_GT(full.size(), 0u);

  MemoryTracker root(0, 0);
  std::string victim = dir + "/victim.cache";
  int64_t max_loaded = 0;
  for (size_t len = 0; len <= full.size(); ++len) {
    WriteFileBytes(victim, std::vector<unsigned char>(full.begin(),
                                                      full.begin() + len));
    SharedMemo::Config config;
    config.parent = &root;
    SharedMemo memo(config);
    CacheStore store(victim);
    CacheStore::LoadResult load = store.Load(&memo, catalog_fp);
    // Success or degradation, never an inconsistent in-between.
    if (len == full.size()) {
      EXPECT_EQ(load.loaded, 3) << "full file failed to load";
      EXPECT_FALSE(load.degraded) << load.detail;
    } else {
      // Mid-record truncation must be flagged; truncation exactly at a
      // record boundary is indistinguishable from a smaller snapshot (a
      // record stream carries no trailer), so there the contract is just
      // "fewer entries, no lie about completeness".
      EXPECT_TRUE(load.degraded || load.loaded < 3)
          << "truncation at " << len << " went unnoticed";
      EXPECT_LE(load.loaded, 3);
    }
    max_loaded = std::max(max_loaded, load.loaded);
    EXPECT_EQ(root.used(), memo.used_bytes()) << "tracker leak at " << len;
    memo.Clear();
    ASSERT_EQ(root.used(), 0) << "tracker leak at " << len;
  }
  // Some prefix lengths must still salvage entries (valid-prefix import).
  EXPECT_EQ(max_loaded, 3);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheStoreTest, TornLogIsTruncatedAndStaysAppendable) {
  std::string dir = TestDir("tornlog");
  std::string path = dir + "/plan.cache";
  const uint64_t catalog_fp = 0x5eedu;

  SharedMemo memo;
  CacheStore store(path);
  ASSERT_TRUE(store.WriteSnapshot(&memo, catalog_fp).ok());
  uint64_t gen = memo.BeginQuery();
  memo.Pin();
  memo.Publish(11, LeafPayload(1, 7.0), gen, true);
  memo.Publish(22, LeafPayload(2, 9.0), gen, true);
  memo.Unpin();
  ASSERT_TRUE(store.AppendNew(&memo, catalog_fp).ok());

  // Tear the log mid-way through its last record (simulates a crash
  // during an append).
  std::vector<unsigned char> log = ReadFileBytes(store.log_path());
  ASSERT_GT(log.size(), 8u);
  size_t torn_len = log.size() - 5;
  WriteFileBytes(store.log_path(),
                 std::vector<unsigned char>(log.begin(),
                                            log.begin() + torn_len));

  SharedMemo recovered;
  CacheStore reloaded(path);
  CacheStore::LoadResult load = reloaded.Load(&recovered, catalog_fp);
  EXPECT_TRUE(load.degraded);
  EXPECT_EQ(load.loaded, 1) << load.detail;  // the intact first record
  // The loader repaired the tear physically, so the log ends at a record
  // boundary again...
  EXPECT_LT(fs::file_size(store.log_path()), torn_len);

  // ...and a subsequent daemon can keep appending to it: new entries land
  // after the repaired tail and the whole file stays loadable.
  gen = recovered.BeginQuery();
  recovered.Pin();
  recovered.Publish(33, LeafPayload(3, 11.0), gen, true);
  recovered.Unpin();
  ASSERT_TRUE(reloaded.AppendNew(&recovered, catalog_fp).ok());
  SharedMemo final_memo;
  CacheStore::LoadResult final_load =
      CacheStore(path).Load(&final_memo, catalog_fp);
  EXPECT_FALSE(final_load.degraded) << final_load.detail;
  EXPECT_EQ(final_load.loaded, 2);  // entry 11 (salvaged) + entry 33

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheStoreTest, StaleEpochEntriesAreDiscardedOnLoad) {
  std::string dir = TestDir("epoch");
  std::string path = dir + "/plan.cache";
  const uint64_t catalog_fp = 0x5eedu;

  SharedMemo source;
  uint64_t gen = source.BeginQuery();
  source.Pin();
  source.Publish(11, LeafPayload(1, 7.0), gen, true);
  source.Unpin();
  ASSERT_TRUE(CacheStore(path).WriteSnapshot(&source, catalog_fp).ok());

  // The loading daemon's statistics have moved on: its memo is at epoch
  // 1, the file's entries were costed under epoch 0.
  SharedMemo memo;
  memo.AdvanceEpoch();
  CacheStore::LoadResult load = CacheStore(path).Load(&memo, catalog_fp);
  EXPECT_EQ(load.loaded, 0);
  EXPECT_EQ(load.discarded, 1);
  EXPECT_EQ(memo.entry_count(), 0);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheStoreTest, WrongCatalogFingerprintDiscardsTheFile) {
  std::string dir = TestDir("catalog");
  std::string path = dir + "/plan.cache";

  SharedMemo source;
  uint64_t gen = source.BeginQuery();
  source.Pin();
  source.Publish(11, LeafPayload(1, 7.0), gen, true);
  source.Unpin();
  ASSERT_TRUE(CacheStore(path).WriteSnapshot(&source, 0x5eedu).ok());

  SharedMemo memo;
  CacheStore::LoadResult load = CacheStore(path).Load(&memo, 0xbad5eedu);
  EXPECT_EQ(load.loaded, 0);
  EXPECT_GE(load.discarded, 1);
  EXPECT_TRUE(load.degraded);
  EXPECT_EQ(memo.entry_count(), 0);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheStoreTest, GarbageFileDegradesToColdCache) {
  std::string dir = TestDir("garbage");
  std::string path = dir + "/plan.cache";
  WriteFileBytes(path, std::vector<unsigned char>(257, 0x5a));

  SharedMemo memo;
  CacheStore::LoadResult load = CacheStore(path).Load(&memo, 0x5eedu);
  EXPECT_EQ(load.loaded, 0);
  EXPECT_TRUE(load.degraded);
  EXPECT_EQ(memo.entry_count(), 0);

  // Missing file: clean cold start, not even degraded.
  SharedMemo memo2;
  CacheStore::LoadResult missing =
      CacheStore(dir + "/nope.cache").Load(&memo2, 0x5eedu);
  EXPECT_EQ(missing.loaded, 0);
  EXPECT_FALSE(missing.degraded);
  EXPECT_FALSE(missing.snapshot_present);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheStoreTest, CacheIoFaultsFailWritesCleanlyAndDegradeLoads) {
  std::string dir = TestDir("faults");
  std::string path = dir + "/plan.cache";
  const uint64_t catalog_fp = 0x5eedu;

  SharedMemo source;
  uint64_t gen = source.BeginQuery();
  source.Pin();
  source.Publish(11, LeafPayload(1, 7.0), gen, true);
  source.Unpin();

  // Every early fault site in the snapshot path: the write fails with a
  // Status and never leaves a half-written snapshot visible at `path`.
  for (int64_t skip = 0; skip < 4; ++skip) {
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kCacheIo, skip);
    CacheStore store(path);
    Status s = store.WriteSnapshot(&source, catalog_fp);
    EXPECT_FALSE(s.ok()) << "skip " << skip;
    EXPECT_FALSE(fs::exists(path)) << "skip " << skip
                                   << ": torn snapshot left visible";
  }
  FaultInjector::Reset();
  ASSERT_TRUE(CacheStore(path).WriteSnapshot(&source, catalog_fp).ok());

  // Load-side faults (open/read): the cache degrades to cold, the daemon
  // lives on, and the tracker stays balanced.
  for (int64_t skip = 0; skip < 2; ++skip) {
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kCacheIo, skip);
    MemoryTracker root(0, 0);
    SharedMemo::Config config;
    config.parent = &root;
    SharedMemo memo(config);
    CacheStore::LoadResult load = CacheStore(path).Load(&memo, catalog_fp);
    EXPECT_TRUE(load.degraded) << "skip " << skip;
    EXPECT_EQ(root.used(), memo.used_bytes());
    memo.Clear();
    EXPECT_EQ(root.used(), 0);
  }
  FaultInjector::Reset();

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheStoreTest, CatalogFingerprintTracksSchemaAndData) {
  Database a;
  a.Add(MakeRelation({{0, "a", DataType::kInt64}}, {{I(1)}, {I(2)}}));
  Database b;
  b.Add(MakeRelation({{0, "a", DataType::kInt64}}, {{I(1)}, {I(2)}}));
  EXPECT_EQ(CatalogFingerprint(a), CatalogFingerprint(b));

  // One changed row value, a renamed column, and an extra table must all
  // move the fingerprint.
  Database c;
  c.Add(MakeRelation({{0, "a", DataType::kInt64}}, {{I(1)}, {I(3)}}));
  EXPECT_NE(CatalogFingerprint(a), CatalogFingerprint(c));
  Database d;
  d.Add(MakeRelation({{0, "b", DataType::kInt64}}, {{I(1)}, {I(2)}}));
  EXPECT_NE(CatalogFingerprint(a), CatalogFingerprint(d));
  Database e;
  e.Add(MakeRelation({{0, "a", DataType::kInt64}}, {{I(1)}, {I(2)}}));
  e.Add(MakeRelation({{1, "x", DataType::kString}}, {{S("s")}}));
  EXPECT_NE(CatalogFingerprint(a), CatalogFingerprint(e));
}

}  // namespace
}  // namespace eca
