// The pull-based (Volcano) engine must agree with the materializing
// executor on every plan — including compensated plans coming out of the
// rewrite layer — and support early-out row limits.

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "exec/explain.h"
#include "exec/iterator_exec.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

class PullEngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PullEngineEquivalence, MatchesMaterializingExecutorOnQueries) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 733 + 1);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  qopts.allow_full_outer = seed % 4 == 0;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);

  Executor ex;
  Relation materialized = ex.Execute(*query, db);
  Relation pulled = ExecutePull(*query, db);
  ExpectSameRelation(materialized, pulled, "pull engine vs executor");
}

TEST_P(PullEngineEquivalence, MatchesOnCompensatedPlans) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 11 + 3);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 4;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);
  EnumeratorOptions opts;
  TopDownEnumerator e(&cost, opts);
  auto result = e.Optimize(*query);
  ASSERT_NE(result.plan, nullptr);

  Executor ex;
  Relation materialized = ex.Execute(*result.plan, db);
  Relation pulled = ExecutePull(*result.plan, db);
  ExpectSameRelation(materialized, pulled,
                     "pull engine on a compensated plan:\n" +
                         result.plan->ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PullEngineEquivalence,
                         ::testing::Range(0, 20));

TEST(PullEngineTest, RowLimitStopsEarly) {
  Rng rng(5);
  RandomDataOptions dopts;
  dopts.min_rows = 50;
  dopts.max_rows = 50;
  dopts.empty_prob = 0;
  Database db = RandomDatabase(rng, 2, dopts);
  PlanPtr plan = Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a"),
                            Plan::Leaf(0), Plan::Leaf(1));
  Relation limited = ExecutePullLimit(*plan, db, 5);
  EXPECT_EQ(limited.NumRows(), 5);
}

TEST(PullEngineTest, StreamingOperatorsMatchBatch) {
  Rng rng(17);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 2, dopts);
  PredRef p = EquiJoin(0, "a", 1, "a", "p01");
  // lambda over gamma over loj: a fully streaming pipeline.
  PlanPtr plan = Plan::Comp(
      CompOp::Lambda(p, RelSet::Single(1)),
      Plan::Comp(CompOp::Gamma(RelSet::Single(1)),
                 Plan::Join(JoinOp::kLeftOuter, p, Plan::Leaf(0),
                            Plan::Leaf(1))));
  Executor ex;
  ExpectSameRelation(ex.Execute(*plan, db), ExecutePull(*plan, db));
}

TEST(PullEngineTest, SemiAndAntiStream) {
  Rng rng(23);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 2, dopts);
  for (JoinOp op : {JoinOp::kLeftSemi, JoinOp::kLeftAnti}) {
    PlanPtr plan = Plan::Join(op, EquiJoin(0, "a", 1, "a"), Plan::Leaf(0),
                              Plan::Leaf(1));
    Executor ex;
    ExpectSameRelation(ex.Execute(*plan, db), ExecutePull(*plan, db),
                       JoinOpName(op));
  }
}

// --------------------------------------------------------------------------
// ExplainAnalyze
// --------------------------------------------------------------------------

TEST(ExplainAnalyzeTest, ProfilesEveryNode) {
  Rng rng(3);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 2, dopts);
  PlanPtr plan = Plan::Comp(
      CompOp::Beta(),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)));
  std::vector<NodeProfile> profiles = ProfilePlan(*plan, db);
  ASSERT_EQ(profiles.size(), 4u);  // beta, loj, scan, scan
  EXPECT_EQ(profiles[0].label, "beta");
  EXPECT_EQ(profiles[0].depth, 0);
  EXPECT_EQ(profiles[1].depth, 1);
  // The root's row count equals the executed result's.
  Executor ex;
  EXPECT_EQ(profiles[0].rows, ex.Execute(*plan, db).NumRows());

  std::string rendered = ExplainAnalyze(*plan, db);
  EXPECT_NE(rendered.find("loj[p01]"), std::string::npos);
  EXPECT_NE(rendered.find("rows="), std::string::npos);
}

}  // namespace
}  // namespace eca
