#include <gtest/gtest.h>

#include "exec/executor.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

// R0: employees (k, dept); R1: departments (k, budget-ish).
Relation LeftRel() {
  return MakeRelation(
      {{0, "k", DataType::kInt64}, {0, "d", DataType::kInt64}},
      {{I(1), I(10)}, {I(2), I(20)}, {I(3), N()}, {I(4), I(40)}});
}

Relation RightRel() {
  return MakeRelation(
      {{1, "k", DataType::kInt64}, {1, "d", DataType::kInt64}},
      {{I(1), I(10)}, {I(2), I(10)}, {I(3), I(30)}, {I(4), N()}});
}

PredRef JoinPred() { return EquiJoin(0, "d", 1, "d", "p01"); }

TEST(JoinExecTest, InnerJoinMatchesOnEquality) {
  Relation out = EvalJoin(JoinOp::kInner, JoinPred(), LeftRel(), RightRel());
  // d=10 on the left matches two right rows; NULLs never match.
  Relation expected = MakeRelation(
      {{0, "k", DataType::kInt64},
       {0, "d", DataType::kInt64},
       {1, "k", DataType::kInt64},
       {1, "d", DataType::kInt64}},
      {{I(1), I(10), I(1), I(10)}, {I(1), I(10), I(2), I(10)}});
  ExpectSameRelation(expected, out);
}

TEST(JoinExecTest, LeftOuterPadsUnmatched) {
  Relation out =
      EvalJoin(JoinOp::kLeftOuter, JoinPred(), LeftRel(), RightRel());
  EXPECT_EQ(out.NumRows(), 2 + 3);  // two matches + three padded left rows
  int padded = 0;
  for (const Tuple& t : out.rows()) {
    if (t[2].is_null() && t[3].is_null()) ++padded;
  }
  EXPECT_EQ(padded, 3);
}

TEST(JoinExecTest, FullOuterPadsBothSides) {
  Relation out =
      EvalJoin(JoinOp::kFullOuter, JoinPred(), LeftRel(), RightRel());
  // 2 matches (left k=1 with right k=1,2) + 3 unmatched left + 2 unmatched
  // right (k=3 and the NULL-keyed k=4).
  EXPECT_EQ(out.NumRows(), 7);
}

TEST(JoinExecTest, SemiAndAntiPartitionTheInput) {
  Relation semi =
      EvalJoin(JoinOp::kLeftSemi, JoinPred(), LeftRel(), RightRel());
  Relation anti =
      EvalJoin(JoinOp::kLeftAnti, JoinPred(), LeftRel(), RightRel());
  EXPECT_EQ(semi.NumRows() + anti.NumRows(), LeftRel().NumRows());
  EXPECT_EQ(semi.NumRows(), 1);  // only k=1 (d=10) has matches
  EXPECT_EQ(semi.schema(), LeftRel().schema());
  // The NULL-d left row is unmatched, hence in the antijoin result.
  bool found_null_row = false;
  for (const Tuple& t : anti.rows()) {
    if (t[1].is_null()) found_null_row = true;
  }
  EXPECT_TRUE(found_null_row);
}

TEST(JoinExecTest, RightVariantsMirror) {
  Relation rsemi =
      EvalJoin(JoinOp::kRightSemi, JoinPred(), LeftRel(), RightRel());
  Relation lsemi_mirror =
      EvalJoin(JoinOp::kLeftSemi, JoinPred(), RightRel(), LeftRel());
  ExpectSameRelation(lsemi_mirror, rsemi);

  Relation router =
      EvalJoin(JoinOp::kRightOuter, JoinPred(), LeftRel(), RightRel());
  Relation louter_mirror =
      EvalJoin(JoinOp::kLeftOuter, JoinPred(), RightRel(), LeftRel());
  ExpectSameRelation(louter_mirror, router);
}

TEST(JoinExecTest, CrossProduct) {
  Relation out =
      EvalJoin(JoinOp::kCross, nullptr, LeftRel(), RightRel());
  EXPECT_EQ(out.NumRows(), LeftRel().NumRows() * RightRel().NumRows());
}

TEST(JoinExecTest, EmptyInputs) {
  Relation empty_left(LeftRel().schema());
  Relation empty_right(RightRel().schema());
  EXPECT_EQ(
      EvalJoin(JoinOp::kInner, JoinPred(), empty_left, RightRel()).NumRows(),
      0);
  EXPECT_EQ(EvalJoin(JoinOp::kLeftOuter, JoinPred(), LeftRel(), empty_right)
                .NumRows(),
            LeftRel().NumRows());
  EXPECT_EQ(EvalJoin(JoinOp::kLeftAnti, JoinPred(), LeftRel(), empty_right)
                .NumRows(),
            LeftRel().NumRows());
  EXPECT_EQ(EvalJoin(JoinOp::kFullOuter, JoinPred(), empty_left, RightRel())
                .NumRows(),
            RightRel().NumRows());
}

TEST(JoinExecTest, NonEquiPredicateFallsBackToNestedLoop) {
  PredRef lt = Predicate::WithLabel(Lt(Col(0, "d"), Col(1, "d")), "lt");
  Relation out = EvalJoin(JoinOp::kInner, lt, LeftRel(), RightRel());
  Relation naive = EvalJoinNaive(JoinOp::kInner, lt, LeftRel(), RightRel());
  ExpectSameRelation(naive, out);
  EXPECT_GT(out.NumRows(), 0);
}

// Parameterized sweep: every join operator, hash and sort-merge paths, over
// randomized inputs, validated against the nested-loop reference.
class JoinAlgoEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

const JoinOp kAllOps[] = {
    JoinOp::kInner,     JoinOp::kLeftOuter, JoinOp::kRightOuter,
    JoinOp::kFullOuter, JoinOp::kLeftSemi,  JoinOp::kRightSemi,
    JoinOp::kLeftAnti,  JoinOp::kRightAnti,
};

TEST_P(JoinAlgoEquivalence, HashAndSortMergeMatchNaive) {
  auto [op_index, seed] = GetParam();
  JoinOp op = kAllOps[op_index];
  Rng rng(static_cast<uint64_t>(seed) * 977 + 13);
  RandomDataOptions opts;
  opts.max_rows = 12;
  Relation left = RandomRelation(rng, 0, opts);
  Relation right = RandomRelation(rng, 1, opts);
  // Mixed predicate: equi conjunct plus residual inequality.
  PredRef pred = Predicate::And(
      {Eq(Col(0, "a"), Col(1, "a")),
       Predicate::Compare(Predicate::CmpOp::kLe, Col(0, "b"), Col(1, "b"))});
  Relation naive = EvalJoinNaive(op, pred, left, right);
  Relation hash = EvalJoin(op, pred, left, right,
                           Executor::JoinPreference::kHash);
  Relation smj = EvalJoin(op, pred, left, right,
                          Executor::JoinPreference::kSortMerge);
  ExpectSameRelation(naive, hash, "hash join vs naive");
  ExpectSameRelation(naive, smj, "sort-merge join vs naive");
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsManySeeds, JoinAlgoEquivalence,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 12)));

}  // namespace
}  // namespace eca
