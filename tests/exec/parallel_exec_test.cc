// Golden parallel-vs-sequential tests: the partitioned executor must return
// BYTE-IDENTICAL results (same rows, same order, same schema) for every
// thread count — not just the same multiset. SameMultiset would hide
// ordering regressions that break downstream golden files and the
// determinism guarantee documented in docs/performance.md.

#include <gtest/gtest.h>

#include <string>

#include "algebra/comp_op.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

// Exact equality, row order included.
void ExpectIdentical(const Relation& expected, const Relation& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.schema(), actual.schema()) << context;
  ASSERT_EQ(expected.NumRows(), actual.NumRows()) << context;
  for (int64_t r = 0; r < expected.NumRows(); ++r) {
    const Tuple& e = expected.rows()[static_cast<size_t>(r)];
    const Tuple& a = actual.rows()[static_cast<size_t>(r)];
    for (size_t c = 0; c < e.size(); ++c) {
      ASSERT_EQ(e[c].is_null(), a[c].is_null())
          << context << " row " << r << " col " << c;
      ASSERT_EQ(e[c].ToString(), a[c].ToString())
          << context << " row " << r << " col " << c;
    }
  }
}

const JoinOp kAllOps[] = {
    JoinOp::kInner,     JoinOp::kLeftOuter, JoinOp::kRightOuter,
    JoinOp::kFullOuter, JoinOp::kLeftSemi,  JoinOp::kRightSemi,
    JoinOp::kLeftAnti,  JoinOp::kRightAnti,
};

// Every join operator, on inputs with NULL keys and a residual inequality
// conjunct, at several thread counts (covering "more threads than rows"
// and non-power-of-two pools).
class ParallelJoinGolden
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelJoinGolden, ByteIdenticalToSequential) {
  auto [op_index, seed] = GetParam();
  JoinOp op = kAllOps[op_index];
  Rng rng(static_cast<uint64_t>(seed) * 6271 + 5);
  RandomDataOptions opts;
  opts.max_rows = 40;
  opts.null_prob = 0.3;  // plenty of NULL join keys
  Relation left = RandomRelation(rng, 0, opts);
  Relation right = RandomRelation(rng, 1, opts);
  PredRef pred = Predicate::And(
      {Eq(Col(0, "a"), Col(1, "a")),
       Predicate::Compare(Predicate::CmpOp::kLe, Col(0, "b"), Col(1, "b"))});

  Relation sequential = EvalJoin(op, pred, left, right);
  for (int threads : {2, 3, 4}) {
    ThreadPool pool(threads);
    ExecStats stats;
    Relation parallel = EvalJoin(op, pred, left, right,
                                 Executor::JoinPreference::kHash, &stats,
                                 &pool);
    ExpectIdentical(sequential, parallel,
                    std::string(JoinOpName(op)) + " threads=" +
                        std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsManySeeds, ParallelJoinGolden,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8)));

// A full-outer result has the block-NULL structure the compensation
// operators care about: matched rows, left-padded rows, right-padded rows.
Relation CompInput(uint64_t seed) {
  Rng rng(seed * 31 + 7);
  RandomDataOptions opts;
  opts.max_rows = 60;
  opts.null_prob = 0.25;
  Relation left = RandomRelation(rng, 0, opts);
  Relation right = RandomRelation(rng, 1, opts);
  return EvalJoin(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a", "p01"), left,
                  right);
}

TEST(ParallelCompGolden, LambdaByteIdentical) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Relation in = CompInput(seed);
    PredRef pred = Predicate::Compare(Predicate::CmpOp::kLe, Col(0, "b"),
                                      Col(1, "b"));
    Relation sequential = EvalLambda(pred, RelSet::Single(1), in);
    ThreadPool pool(4);
    Relation parallel = EvalLambda(pred, RelSet::Single(1), in, &pool);
    ExpectIdentical(sequential, parallel,
                    "lambda seed " + std::to_string(seed));
  }
}

TEST(ParallelCompGolden, GammaByteIdentical) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Relation in = CompInput(seed);
    Relation sequential = EvalGamma(RelSet::Single(1), in);
    ThreadPool pool(4);
    Relation parallel = EvalGamma(RelSet::Single(1), in, &pool);
    ExpectIdentical(sequential, parallel,
                    "gamma seed " + std::to_string(seed));
  }
}

TEST(ParallelCompGolden, GammaStarByteIdentical) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Relation in = CompInput(seed);
    RelSet keep = RelSet::Single(0);
    Relation sequential = EvalGammaStar(RelSet::Single(1), keep, in);
    ThreadPool pool(4);
    Relation parallel = EvalGammaStar(RelSet::Single(1), keep, in, &pool);
    ExpectIdentical(sequential, parallel,
                    "gamma* seed " + std::to_string(seed));
  }
}

// Whole plans through the Executor facade: joins plus all four compensation
// operators (beta is sequential by design but must compose byte-identically
// with the parallel stages feeding it).
TEST(ParallelExecutorGolden, CompensatedPlanByteIdentical) {
  Rng rng(2026);
  RandomDataOptions opts;
  opts.max_rows = 50;
  opts.null_prob = 0.25;
  opts.empty_prob = 0;
  Database db = RandomDatabase(rng, 3, opts);
  PlanPtr plan = Plan::Comp(
      CompOp::Beta(),
      Plan::Comp(
          CompOp::Lambda(EquiJoin(0, "a", 1, "a", "p01"), RelSet::Single(1)),
          Plan::Join(
              JoinOp::kFullOuter, EquiJoin(1, "b", 2, "b", "p12"),
              Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a", "p01"),
                         Plan::Leaf(0), Plan::Leaf(1)),
              Plan::Leaf(2))));
  PlanPtr gstar = Plan::Comp(
      CompOp::GammaStar(RelSet::Single(2), RelSet::FirstN(2)),
      Plan::Comp(CompOp::Gamma(RelSet::Single(2)),
                 Plan::Join(JoinOp::kFullOuter, EquiJoin(1, "b", 2, "b", "p12"),
                            Plan::Join(JoinOp::kLeftOuter,
                                       EquiJoin(0, "a", 1, "a", "p01"),
                                       Plan::Leaf(0), Plan::Leaf(1)),
                            Plan::Leaf(2))));
  for (const PlanPtr* p : {&plan, &gstar}) {
    Executor sequential;
    Relation expect = sequential.Execute(**p, db);
    for (int threads : {2, 4}) {
      Executor::Options eopts;
      eopts.num_threads = threads;
      Executor parallel(eopts);
      Relation got = parallel.Execute(**p, db);
      ExpectIdentical(expect, got,
                      (*p)->ToInlineString() + " threads=" +
                          std::to_string(threads));
    }
  }
}

// The hash join must build its table on the smaller input for inner/semi/
// anti joins (the historical build-on-right choice costs O(|bigger|) memory
// for nothing), while outer variants keep their side.
TEST(ParallelExecutor, BuildsHashTableOnSmallerSide) {
  RandomDataOptions opts;
  opts.null_prob = 0;  // non-NULL keys so build counts are exact
  opts.empty_prob = 0;
  Rng rng(99);
  opts.min_rows = 3;
  opts.max_rows = 3;
  Relation small = RandomRelation(rng, 0, opts);
  opts.min_rows = 80;
  opts.max_rows = 80;
  Relation big = RandomRelation(rng, 1, opts);
  PredRef pred = EquiJoin(0, "k", 1, "k", "p01");

  for (JoinOp op : {JoinOp::kInner, JoinOp::kLeftSemi, JoinOp::kRightSemi,
                    JoinOp::kLeftAnti, JoinOp::kRightAnti}) {
    ExecStats stats;
    EvalJoin(op, pred, small, big, Executor::JoinPreference::kHash, &stats);
    EXPECT_EQ(stats.hash_build_rows, 3) << JoinOpName(op) << " small-left";
    stats.Reset();
    EvalJoin(op, pred, big, small, Executor::JoinPreference::kHash, &stats);
    EXPECT_EQ(stats.hash_build_rows, 3) << JoinOpName(op) << " small-right";
  }
  // Outer joins keep the historical build-on-right regardless of size:
  // their padding logic is side-specific.
  ExecStats stats;
  EvalJoin(JoinOp::kLeftOuter, pred, big, small,
           Executor::JoinPreference::kHash, &stats);
  EXPECT_EQ(stats.hash_build_rows, 3);
  stats.Reset();
  EvalJoin(JoinOp::kLeftOuter, pred, small, big,
           Executor::JoinPreference::kHash, &stats);
  EXPECT_EQ(stats.hash_build_rows, 80);
}

TEST(ParallelExecutor, RecordsPartitionStats) {
  RandomDataOptions opts;
  opts.min_rows = 200;
  opts.max_rows = 200;
  opts.null_prob = 0;
  opts.empty_prob = 0;
  Rng rng(7);
  Relation left = RandomRelation(rng, 0, opts);
  Relation right = RandomRelation(rng, 1, opts);
  ThreadPool pool(4);
  ExecStats stats;
  EvalJoin(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"), left, right,
           Executor::JoinPreference::kHash, &stats, &pool);
  // 4 threads -> at least 16 partitions, skew >= 1 by definition.
  EXPECT_GE(stats.partitions_built, 16);
  EXPECT_GE(stats.partition_skew, 1.0);
  EXPECT_GE(stats.max_partition_rows, stats.min_partition_rows);
  EXPECT_EQ(stats.hash_build_rows, 200);
}

}  // namespace
}  // namespace eca
