// Metamorphic invariants over the execution operators: relationships that
// must hold between operator outputs on ANY input, independent of the
// specific data.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

class Metamorphic : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    Rng rng(static_cast<uint64_t>(GetParam()) * 5 + 113);
    RandomDataOptions opts;
    opts.max_rows = 15;
    opts.null_prob = 0.25;
    left_ = RandomRelation(rng, 0, opts);
    right_ = RandomRelation(rng, 1, opts);
    pred_ = RandomJoinPredicate(rng, RelSet::Single(0), RelSet::Single(1),
                                opts, "p");
  }
  Relation left_, right_;
  PredRef pred_;
};

TEST_P(Metamorphic, SemiPlusAntiPartitionsInput) {
  Relation semi = EvalJoin(JoinOp::kLeftSemi, pred_, left_, right_);
  Relation anti = EvalJoin(JoinOp::kLeftAnti, pred_, left_, right_);
  EXPECT_EQ(semi.NumRows() + anti.NumRows(), left_.NumRows());
  // Their union is the left input.
  Relation both = semi;
  for (const Tuple& t : anti.rows()) both.Add(t);
  ExpectSameRelation(left_, both);
}

TEST_P(Metamorphic, OuterJoinDecomposition) {
  Relation inner = EvalJoin(JoinOp::kInner, pred_, left_, right_);
  Relation louter = EvalJoin(JoinOp::kLeftOuter, pred_, left_, right_);
  Relation router = EvalJoin(JoinOp::kRightOuter, pred_, left_, right_);
  Relation fouter = EvalJoin(JoinOp::kFullOuter, pred_, left_, right_);
  Relation anti_l = EvalJoin(JoinOp::kLeftAnti, pred_, left_, right_);
  Relation anti_r = EvalJoin(JoinOp::kRightAnti, pred_, left_, right_);
  // |louter| = |inner| + |left antijoin| etc.
  EXPECT_EQ(louter.NumRows(), inner.NumRows() + anti_l.NumRows());
  EXPECT_EQ(router.NumRows(), inner.NumRows() + anti_r.NumRows());
  EXPECT_EQ(fouter.NumRows(),
            inner.NumRows() + anti_l.NumRows() + anti_r.NumRows());
}

TEST_P(Metamorphic, JoinCommutes) {
  for (JoinOp op : {JoinOp::kInner, JoinOp::kFullOuter}) {
    Relation ab = EvalJoin(op, pred_, left_, right_);
    Relation ba = EvalJoin(op, pred_, right_, left_);
    ExpectSameRelation(CanonicalizeColumnOrder(ab),
                       CanonicalizeColumnOrder(ba), JoinOpName(op));
  }
  // loj(A,B) == roj(B,A).
  Relation loj = EvalJoin(JoinOp::kLeftOuter, pred_, left_, right_);
  Relation roj = EvalJoin(JoinOp::kRightOuter, pred_, right_, left_);
  ExpectSameRelation(CanonicalizeColumnOrder(loj),
                     CanonicalizeColumnOrder(roj));
}

TEST_P(Metamorphic, CompensationOperatorInvariants) {
  Relation joined = EvalJoin(JoinOp::kLeftOuter, pred_, left_, right_);
  // lambda preserves cardinality.
  Relation lam = EvalLambda(pred_, RelSet::Single(1), joined);
  EXPECT_EQ(lam.NumRows(), joined.NumRows());
  // beta never grows and is idempotent.
  Relation beta = EvalBeta(lam);
  EXPECT_LE(beta.NumRows(), lam.NumRows());
  ExpectSameRelation(beta, EvalBeta(beta));
  // gamma selects a subset.
  Relation gamma = EvalGamma(RelSet::Single(1), joined);
  EXPECT_LE(gamma.NumRows(), joined.NumRows());
  // gamma* keeps at most the input cardinality and at least the gamma part.
  Relation gs = EvalGammaStar(RelSet::Single(1), RelSet::Single(0), joined);
  EXPECT_LE(gs.NumRows(), joined.NumRows());
  EXPECT_GE(gs.NumRows(), gamma.NumRows());
  // Every gamma-selected tuple survives gamma* unchanged.
  Relation gs_gamma = EvalGamma(RelSet::Single(1), gs);
  for (const Tuple& t : gamma.rows()) {
    bool found = false;
    for (const Tuple& u : gs_gamma.rows()) {
      if (CompareTuples(t, u) == 0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(Metamorphic, BetaOnlyRemovesDominatedOrDuplicated) {
  Relation joined = EvalJoin(JoinOp::kLeftOuter, pred_, left_, right_);
  Relation lam = EvalLambda(pred_, RelSet::Single(1), joined);
  Relation beta = EvalBeta(lam);
  // beta's output is a sub-multiset of its input.
  std::vector<Tuple> in_rows = lam.rows(), out_rows = beta.rows();
  auto less = [](const Tuple& a, const Tuple& b) {
    return CompareTuples(a, b) < 0;
  };
  std::sort(in_rows.begin(), in_rows.end(), less);
  std::sort(out_rows.begin(), out_rows.end(), less);
  EXPECT_TRUE(std::includes(in_rows.begin(), in_rows.end(),
                            out_rows.begin(), out_rows.end(), less));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic, ::testing::Range(0, 15));

}  // namespace
}  // namespace eca
