// Morsel-scheduler edge cases and partition-stat accounting.
//
// The vectorized executor claims work in fixed-size morsels whose
// boundaries depend only on (total_rows, morsel_rows) — never the thread
// count — and assembles output in morsel-index order. The contract under
// test: byte-identical results for EVERY legal (threads, morsel_rows,
// chunk_rows) combination, including the degenerate corners (empty
// inputs, sub-morsel inputs, single-row morsels, all-NULL key chunks
// through fused compensation, and the grace-join spill path).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/comp_op.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/query_context.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

void ExpectIdentical(const Relation& expected, const Relation& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.schema(), actual.schema()) << context;
  ASSERT_EQ(expected.NumRows(), actual.NumRows()) << context;
  for (size_t r = 0; r < expected.rows().size(); ++r) {
    ASSERT_EQ(CompareTuples(expected.rows()[r], actual.rows()[r]), 0)
        << context << ": first difference at row " << r;
  }
}

const JoinOp kAllOps[] = {
    JoinOp::kInner,     JoinOp::kLeftOuter, JoinOp::kRightOuter,
    JoinOp::kFullOuter, JoinOp::kLeftSemi,  JoinOp::kRightSemi,
    JoinOp::kLeftAnti,  JoinOp::kRightAnti,
};

Relation EmptyRel(int rel_id) {
  return MakeRelation({{rel_id, "a", DataType::kInt64},
                       {rel_id, "b", DataType::kInt64}},
                      {});
}

Relation SmallRel(int rel_id, uint64_t seed, int rows, double null_prob) {
  Rng rng(seed);
  RandomDataOptions opts;
  opts.min_rows = rows;
  opts.max_rows = rows;
  opts.null_prob = null_prob;
  opts.empty_prob = 0;
  return RandomRelation(rng, rel_id, opts);
}

// Empty build side, empty probe side, and both empty: every join operator
// at every tuning corner must match the sequential default (outer joins
// emit padded rows from the non-empty side; semi/anti keep or drop it).
TEST(MorselEdgeTest, EmptyInputsAllOpsAllTunings) {
  Relation left = SmallRel(0, 11, 20, 0.2);
  Relation right = SmallRel(1, 13, 20, 0.2);
  Relation empty_left = EmptyRel(0);
  Relation empty_right = EmptyRel(1);
  PredRef pred = EquiJoin(0, "a", 1, "a", "p01");

  struct Pair {
    const Relation* l;
    const Relation* r;
    const char* name;
  };
  const Pair pairs[] = {{&empty_left, &right, "empty-left"},
                        {&left, &empty_right, "empty-right"},
                        {&empty_left, &empty_right, "both-empty"}};
  for (JoinOp op : kAllOps) {
    for (const Pair& p : pairs) {
      Relation expect = EvalJoin(op, pred, *p.l, *p.r);
      for (int64_t morsel : {int64_t{1}, int64_t{3}, int64_t{4096}}) {
        ExecTuning tuning;
        tuning.morsel_rows = morsel;
        tuning.chunk_rows = 2;
        ThreadPool pool(3);
        Relation got = EvalJoin(op, pred, *p.l, *p.r,
                                Executor::JoinPreference::kHash,
                                /*stats=*/nullptr, &pool, /*ctx=*/nullptr,
                                &tuning);
        ExpectIdentical(expect, got,
                        std::string(JoinOpName(op)) + " " + p.name +
                            " morsel=" + std::to_string(morsel));
      }
    }
  }
}

// Inputs smaller than one morsel and morsels of a single row: the two
// extremes of the claim granularity, with a chunk size that never divides
// the morsel size evenly.
TEST(MorselEdgeTest, SubMorselAndSingleRowMorselsByteIdentical) {
  Relation left = SmallRel(0, 17, 7, 0.3);
  Relation right = SmallRel(1, 19, 5, 0.3);
  PredRef pred = EquiJoin(0, "a", 1, "a", "p01");
  for (JoinOp op : kAllOps) {
    Relation expect = EvalJoin(op, pred, left, right);
    for (int64_t morsel : {int64_t{1}, int64_t{100}}) {
      for (int64_t chunk : {int64_t{1}, int64_t{3}}) {
        ExecTuning tuning;
        tuning.morsel_rows = morsel;
        tuning.chunk_rows = chunk;
        for (int threads : {1, 4}) {
          ThreadPool pool(threads);
          Relation got = EvalJoin(op, pred, left, right,
                                  Executor::JoinPreference::kHash,
                                  /*stats=*/nullptr, &pool, /*ctx=*/nullptr,
                                  &tuning);
          ExpectIdentical(expect, got,
                          std::string(JoinOpName(op)) + " morsel=" +
                              std::to_string(morsel) + " chunk=" +
                              std::to_string(chunk) + " threads=" +
                              std::to_string(threads));
        }
      }
    }
  }
}

// Chunks whose join keys are ALL NULL, flowing through a fused
// lambda+gamma compensation chain above a full outer join. NULL keys
// never match, so every output row is padding — the fused chain still has
// to see each of them exactly once, in order.
TEST(MorselEdgeTest, NullKeyOnlyChunksThroughFusedCompensation) {
  std::vector<Tuple> lrows, rrows;
  for (int i = 0; i < 30; ++i) {
    lrows.push_back({N(), I(i)});
    rrows.push_back({N(), I(100 + i)});
  }
  Database db;
  db.Add(MakeRelation(
      {{0, "a", DataType::kInt64}, {0, "b", DataType::kInt64}},
      std::move(lrows)));
  db.Add(MakeRelation(
      {{1, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      std::move(rrows)));
  PlanPtr plan = Plan::Comp(
      CompOp::Gamma(RelSet::Single(0)),
      Plan::Comp(
          CompOp::Lambda(Predicate::Compare(Predicate::CmpOp::kLe, Col(0, "b"),
                                            Col(1, "b")),
                         RelSet::Single(1)),
          Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a", "p01"),
                     Plan::Leaf(0), Plan::Leaf(1))));
  Executor sequential;
  Relation expect = sequential.Execute(*plan, db);
  EXPECT_GT(expect.NumRows(), 0);  // gamma keeps the right-padded rows
  for (int threads : {1, 2, 4}) {
    for (int64_t morsel : {int64_t{1}, int64_t{7}, int64_t{4096}}) {
      Executor::Options opts;
      opts.num_threads = threads;
      opts.tuning.morsel_rows = morsel;
      opts.tuning.chunk_rows = 4;
      Executor ex(opts);
      Relation got = ex.Execute(*plan, db);
      ExpectIdentical(expect, got,
                      "null-key fused chain threads=" +
                          std::to_string(threads) + " morsel=" +
                          std::to_string(morsel));
    }
  }
}

// The spill (grace hash join + external sort) path must honor the same
// tuning contract: byte-identical output for every morsel/chunk setting,
// with the tracker balanced afterwards.
TEST(MorselEdgeTest, SpillPathByteIdenticalAcrossTunings) {
  Relation left = SmallRel(0, 23, 300, 0.2);
  Relation right = SmallRel(1, 29, 250, 0.2);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  PlanPtr plan = Plan::Comp(
      CompOp::Beta(),
      Plan::Comp(
          CompOp::Lambda(EquiJoin(0, "a", 1, "a", "p01"), RelSet::Single(1)),
          Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "b", 1, "b", "pb"),
                     Plan::Leaf(0), Plan::Leaf(1))));
  Executor plain;
  Relation expect = plain.Execute(*plan, db);
  for (int64_t morsel : {int64_t{5}, int64_t{4096}}) {
    QueryContext::Limits limits;
    limits.mem_limit_bytes = int64_t{1} << 30;
    limits.mem_soft_bytes = 1;  // spill everything
    QueryContext ctx(limits);
    Executor::Options opts;
    opts.num_threads = 2;
    opts.tuning.morsel_rows = morsel;
    opts.tuning.chunk_rows = 3;
    Executor ex(opts);
    StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectIdentical(expect, *got,
                    "spilled morsel=" + std::to_string(morsel));
    EXPECT_GT(ex.stats().spilled_partitions, 0);
    EXPECT_EQ(ctx.tracker()->used(), 0);
  }
}

// --- Partition-stat accounting (regression) --------------------------------

// One hot key on a 1-thread run used to report partition_skew == 1.000
// exactly: the histogram was built over `threads` partitions, so a single
// thread meant a single partition and the report carried no information.
// The fixed kStatFanout=16 histogram makes the 1-thread report meaningful.
TEST(PartitionStatTest, SkewMeaningfulAtOneThread) {
  // A left outer join builds its table on the right input; every build
  // key is identical, so all 320 build rows land in one stat partition.
  std::vector<Tuple> lrows, rrows;
  for (int i = 0; i < 320; ++i) {
    lrows.push_back({I(i % 40), I(i)});
    rrows.push_back({I(7), I(i)});
  }
  Relation left = MakeRelation(
      {{0, "a", DataType::kInt64}, {0, "b", DataType::kInt64}},
      std::move(lrows));
  Relation right = MakeRelation(
      {{1, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      std::move(rrows));
  ExecStats stats;
  EvalJoin(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"), left, right,
           Executor::JoinPreference::kHash, &stats, /*pool=*/nullptr);
  EXPECT_TRUE(stats.partition_stats_seeded);
  EXPECT_EQ(stats.partitions_built, 16);
  EXPECT_EQ(stats.max_partition_rows, 320);  // the hot key's partition
  EXPECT_EQ(stats.min_partition_rows, 0);
  // All 320 rows in one of 16 partitions: skew = 320 / (320/16) = 16.
  EXPECT_NEAR(stats.partition_skew, 16.0, 1e-9);
}

// The same query must report the same partition shape at every thread
// count — the histogram fanout is fixed, not tied to the pool size.
TEST(PartitionStatTest, ShapeIndependentOfThreadCount) {
  Relation left = SmallRel(0, 31, 200, 0.1);
  Relation right = SmallRel(1, 37, 150, 0.1);
  PredRef pred = EquiJoin(0, "a", 1, "a", "p01");
  ExecStats base;
  EvalJoin(JoinOp::kInner, pred, left, right,
           Executor::JoinPreference::kHash, &base, /*pool=*/nullptr);
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    ExecStats stats;
    EvalJoin(JoinOp::kInner, pred, left, right,
             Executor::JoinPreference::kHash, &stats, &pool);
    EXPECT_EQ(stats.partitions_built, base.partitions_built) << threads;
    EXPECT_EQ(stats.max_partition_rows, base.max_partition_rows) << threads;
    EXPECT_EQ(stats.min_partition_rows, base.min_partition_rows) << threads;
    EXPECT_DOUBLE_EQ(stats.partition_skew, base.partition_skew) << threads;
  }
}

// Regression for the first-join misfire: "is this the first build?" was
// detected as `partitions_built == num_partitions`, which is ALSO true
// after exactly one build — so a query's second hash join re-seeded
// min/max instead of folding into them. The explicit seeded flag keeps
// the min from the first join even when the second join's partitions are
// all larger, and vice versa.
TEST(PartitionStatTest, MinMaxFoldAcrossMultipleJoins) {
  // First join: a left outer join builds on the right input, whose 160
  // rows share one key -> max 160, min 0.
  std::vector<Tuple> hot;
  for (int i = 0; i < 160; ++i) hot.push_back({I(7), I(i)});
  Relation hot_right = MakeRelation(
      {{1, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      std::move(hot));
  Relation probe = SmallRel(0, 41, 50, 0.0);
  ExecStats stats;
  EvalJoin(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"), probe,
           hot_right, Executor::JoinPreference::kHash, &stats);
  ASSERT_EQ(stats.max_partition_rows, 160);
  ASSERT_EQ(stats.min_partition_rows, 0);

  // Second join (same stats object): an evenly spread build whose own
  // min/max are strictly inside [0, 160]. Folding must keep 0 and 160;
  // the old heuristic re-seeded and lost both.
  Relation spread_left = SmallRel(0, 43, 64, 0.0);
  Relation spread_right = SmallRel(1, 47, 64, 0.0);
  EvalJoin(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"), spread_left,
           spread_right, Executor::JoinPreference::kHash, &stats);
  EXPECT_EQ(stats.partitions_built, 32);  // two builds, 16 stat bins each
  EXPECT_EQ(stats.max_partition_rows, 160);
  EXPECT_EQ(stats.min_partition_rows, 0);
  EXPECT_GE(stats.partition_skew, 16.0);  // the hot join's skew survives
}

}  // namespace
}  // namespace eca
