// Tests for the outer-union / minimum-union operators and predicate
// normalization.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "cost/histogram.h"
#include "exec/iterator_exec.h"
#include "expr/pred_normalize.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

// --------------------------------------------------------------------------
// Outer union / minimum union
// --------------------------------------------------------------------------

TEST(OuterUnionTest, AlignsSharedAndPadsDisjointColumns) {
  Relation a = MakeRelation(
      {{0, "x", DataType::kInt64}, {1, "y", DataType::kInt64}},
      {{I(1), I(10)}});
  Relation b = MakeRelation(
      {{0, "x", DataType::kInt64}, {2, "z", DataType::kInt64}},
      {{I(2), I(20)}});
  Relation u = EvalOuterUnion(a, b);
  // Union schema: R0.x, R1.y, R2.z.
  ASSERT_EQ(u.schema().NumColumns(), 3);
  ASSERT_EQ(u.NumRows(), 2);
  Relation expected = MakeRelation({{0, "x", DataType::kInt64},
                                    {1, "y", DataType::kInt64},
                                    {2, "z", DataType::kInt64}},
                                   {{I(1), I(10), N()}, {I(2), N(), I(20)}});
  ExpectSameRelation(expected, u);
}

TEST(OuterUnionTest, IdenticalSchemasConcatenate) {
  Relation a = MakeRelation({{0, "x", DataType::kInt64}}, {{I(1)}});
  Relation b = MakeRelation({{0, "x", DataType::kInt64}}, {{I(2)}, {I(1)}});
  Relation u = EvalOuterUnion(a, b);
  EXPECT_EQ(u.NumRows(), 3);  // bag semantics: duplicates preserved
}

TEST(MinUnionTest, RemovesDominatedAcrossInputs) {
  // Minimum union: a padded tuple dominated by the other input's tuple
  // disappears — the behaviour gamma* relies on (Equation 8).
  Relation a = MakeRelation(
      {{0, "x", DataType::kInt64}, {1, "y", DataType::kInt64}},
      {{I(1), I(10)}});
  Relation b = MakeRelation({{0, "x", DataType::kInt64}}, {{I(1)}, {I(2)}});
  Relation m = EvalMinUnion(a, b);
  // b's (1) pads to (1, null), dominated by a's (1, 10); b's (2) survives.
  Relation expected = MakeRelation(
      {{0, "x", DataType::kInt64}, {1, "y", DataType::kInt64}},
      {{I(1), I(10)}, {I(2), N()}});
  ExpectSameRelation(expected, m);
}

TEST(MinUnionTest, GammaStarViaMinUnion) {
  // gamma*_{A(B)}(R) == MinUnion(gamma_A(R), lambda_false-modified rest):
  // the executable form of Equation 8.
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 321);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 2, opts);
    Relation joined = EvalJoin(JoinOp::kLeftOuter,
                               EquiJoin(0, "a", 1, "a", "p"), db.table(0),
                               db.table(1));
    RelSet a = RelSet::Single(1), keep = RelSet::Single(0);
    Relation direct = EvalGammaStar(a, keep, joined);

    Relation selected = EvalGamma(a, joined);
    Relation rest(joined.schema());
    {
      std::vector<int> acols = joined.schema().ColumnsOf(a);
      for (const Tuple& t : joined.rows()) {
        bool all_null = true;
        for (int c : acols) {
          if (!t[static_cast<size_t>(c)].is_null()) all_null = false;
        }
        if (!all_null) rest.Add(t);
      }
    }
    Relation modified = EvalLambda(Predicate::ConstBool(false),
                                   joined.schema().rels().Minus(keep), rest);
    ExpectSameRelation(direct, EvalMinUnion(selected, modified),
                       "Equation 8 via minimum union");
  }
}

// --------------------------------------------------------------------------
// Predicate normalization
// --------------------------------------------------------------------------

TEST(PredNormalizeTest, FlattensAndDedupes) {
  PredRef a = Eq(Col(0, "x"), Col(1, "x"));
  PredRef b = Gt(Col(0, "y"), Lit(3));
  PredRef nested = Predicate::And(
      {Predicate::And({a, b}), a, Predicate::ConstBool(true)});
  PredRef norm = NormalizePredicate(nested);
  ASSERT_EQ(norm->kind(), Predicate::Kind::kAnd);
  EXPECT_EQ(norm->children().size(), 2u);  // a, b — duplicate a dropped
}

TEST(PredNormalizeTest, ConstantFolding) {
  PredRef a = Eq(Col(0, "x"), Col(1, "x"));
  PredRef and_false =
      Predicate::And({a, Predicate::ConstBool(false)});
  EXPECT_EQ(NormalizePredicate(and_false)->kind(),
            Predicate::Kind::kConstBool);
  EXPECT_FALSE(NormalizePredicate(and_false)->const_bool());

  PredRef or_true = Predicate::Or({a, Predicate::ConstBool(true)});
  EXPECT_TRUE(NormalizePredicate(or_true)->const_bool());

  PredRef only_true = Predicate::And(
      {Predicate::ConstBool(true), Predicate::ConstBool(true)});
  EXPECT_TRUE(NormalizePredicate(only_true)->const_bool());
}

TEST(PredNormalizeTest, DoubleNegation) {
  PredRef a = Eq(Col(0, "x"), Col(1, "x"));
  PredRef nn = Predicate::Not(Predicate::Not(a));
  PredRef norm = NormalizePredicate(nn);
  EXPECT_EQ(norm->kind(), Predicate::Kind::kCompare);
}

TEST(PredNormalizeTest, PreservesSemanticsRandomized) {
  Schema s({{0, "a", DataType::kInt64},
            {0, "b", DataType::kInt64},
            {1, "a", DataType::kInt64}});
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 71 + 5);
    // Random nested predicate over the schema.
    std::function<PredRef(int)> gen = [&](int depth) -> PredRef {
      if (depth == 0 || rng.Bernoulli(0.4)) {
        switch (rng.Uniform(0, 2)) {
          case 0:
            return Eq(Col(0, "a"), Col(1, "a"));
          case 1:
            return Gt(Col(0, "b"), Lit(rng.Uniform(0, 3)));
          default:
            return Predicate::ConstBool(rng.Bernoulli(0.5));
        }
      }
      switch (rng.Uniform(0, 2)) {
        case 0:
          return Predicate::And({gen(depth - 1), gen(depth - 1)});
        case 1:
          return Predicate::Or({gen(depth - 1), gen(depth - 1)});
        default:
          return Predicate::Not(gen(depth - 1));
      }
    };
    PredRef p = gen(4);
    PredRef norm = NormalizePredicate(p);
    for (int trial = 0; trial < 30; ++trial) {
      Tuple t;
      for (int c = 0; c < 3; ++c) {
        t.push_back(rng.Bernoulli(0.25)
                        ? Value::Null(DataType::kInt64)
                        : Value::Int(rng.Uniform(0, 3)));
      }
      EXPECT_EQ(p->Eval(s, t), norm->Eval(s, t))
          << p->ToString() << " vs " << norm->ToString();
    }
  }
}

}  // namespace
}  // namespace eca

namespace eca {
namespace {

TEST(EdgeCases, PullLimitOnCompensatedPlan) {
  Rng rng(77);
  RandomDataOptions dopts;
  dopts.min_rows = 40;
  dopts.max_rows = 40;
  dopts.empty_prob = 0;
  Database db = RandomDatabase(rng, 2, dopts);
  // A compensated shape: beta(lambda(loj)) — the pipeline breaker must
  // still honour the row limit on its output side.
  PredRef p = EquiJoin(0, "a", 1, "a", "p");
  PlanPtr plan = Plan::Comp(
      CompOp::Beta(),
      Plan::Comp(CompOp::Lambda(p, RelSet::Single(1)),
                 Plan::Join(JoinOp::kLeftOuter, p, Plan::Leaf(0),
                            Plan::Leaf(1))));
  Relation limited = ExecutePullLimit(*plan, db, 4);
  EXPECT_EQ(limited.NumRows(), 4);
}

TEST(EdgeCases, SingleValueHistogram) {
  Relation r(Schema({{0, "v", DataType::kInt64}}));
  for (int i = 0; i < 10; ++i) r.Add({Value::Int(7)});
  EquiDepthHistogram h = EquiDepthHistogram::Build(r, 0);
  EXPECT_EQ(h.distinct(), 1);
  EXPECT_DOUBLE_EQ(h.FractionBelow(7.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(8.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionEquals(7.0), 1.0);
}

}  // namespace
}  // namespace eca
