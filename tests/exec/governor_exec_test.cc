// Resource governor end-to-end: spilled execution must be byte-identical
// to in-memory execution (every join operator and every compensation
// operator, NULL keys included), limits/deadlines/cancellation must unwind
// with a clean Status, spill I/O faults must not leave temp files behind,
// and the query tracker must balance to zero on success.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "eca/optimizer.h"
#include "exec/executor.h"
#include "exec/iterator_exec.h"
#include "exec/query_context.h"
#include "storage/relation.h"
#include "storage/spill_file.h"
#include "testing/fault_injection.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

// The spill paths promise byte-identical output — same rows in the same
// order — which is strictly stronger than ExpectSameRelation's multiset
// equality.
void ExpectIdentical(const Relation& expected, const Relation& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.NumRows(), actual.NumRows()) << context;
  ASSERT_EQ(expected.schema().NumColumns(), actual.schema().NumColumns())
      << context;
  for (size_t r = 0; r < expected.rows().size(); ++r) {
    ASSERT_EQ(CompareTuples(expected.rows()[r], actual.rows()[r]), 0)
        << context << ": first difference at row " << r;
  }
}

// A relation big enough that its hash-join build estimate dwarfs any soft
// threshold: unique key k, a skewed join column with NULLs, a payload
// column with NULLs.
Relation BigRel(int rel_id, int rows, uint64_t seed, int64_t key_domain) {
  Rng rng(seed);
  std::vector<Tuple> data;
  data.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    Value join_key = rng.Bernoulli(0.15)
                         ? N()
                         : I(static_cast<int64_t>(rng.Uniform(0, key_domain)));
    Value payload =
        rng.Bernoulli(0.2) ? N() : I(static_cast<int64_t>(rng.Uniform(0, 5)));
    data.push_back({I(i), join_key, payload});
  }
  return MakeRelation({{rel_id, "k", DataType::kInt64},
                       {rel_id, "a", DataType::kInt64},
                       {rel_id, "b", DataType::kInt64}},
                      std::move(data));
}

// A context whose soft threshold is one byte: every governed hash join
// escalates to the grace (spill-to-disk) path and every governed
// best-match to external merge sort.
QueryContext::Limits SpillEverythingLimits() {
  QueryContext::Limits limits;
  limits.mem_limit_bytes = int64_t{1} << 30;
  limits.mem_soft_bytes = 1;
  return limits;
}

constexpr JoinOp kAllJoinOps[] = {
    JoinOp::kInner,    JoinOp::kLeftOuter, JoinOp::kRightOuter,
    JoinOp::kFullOuter, JoinOp::kLeftSemi, JoinOp::kRightSemi,
    JoinOp::kLeftAnti, JoinOp::kRightAnti,
};

TEST(GovernorSpillTest, AllJoinOpsSpilledByteIdentical) {
  Relation left = BigRel(0, 400, 7, /*key_domain=*/25);
  Relation right = BigRel(1, 300, 11, /*key_domain=*/25);
  PredRef pred = EquiJoin(0, "a", 1, "a", "p01");
  for (JoinOp op : kAllJoinOps) {
    Relation in_memory = EvalJoin(op, pred, left, right);
    QueryContext ctx(SpillEverythingLimits());
    ExecStats stats;
    Relation spilled = EvalJoin(op, pred, left, right,
                                Executor::JoinPreference::kHash, &stats,
                                /*pool=*/nullptr, &ctx);
    ASSERT_FALSE(ctx.HasError())
        << JoinOpName(op) << ": " << ctx.StopStatus().ToString();
    ExpectIdentical(in_memory, spilled,
                    std::string("grace join, op ") + JoinOpName(op));
    EXPECT_GT(stats.spilled_partitions, 0) << JoinOpName(op);
    EXPECT_GT(stats.spill_bytes, 0) << JoinOpName(op);
    EXPECT_EQ(ctx.tracker()->used(), 0)
        << JoinOpName(op) << ": scratch charges must all release";
  }
}

// Heavy skew: nearly all rows share one join key, so one grace partition
// keeps exceeding its budget and the join recurses through repartitioning
// levels. Output must still be byte-identical.
TEST(GovernorSpillTest, SkewedGraceJoinRecursesAndStaysIdentical) {
  Relation left = BigRel(0, 1500, 3, /*key_domain=*/2);
  Relation right = BigRel(1, 1200, 5, /*key_domain=*/2);
  PredRef pred = EquiJoin(0, "a", 1, "a", "p01");
  Relation in_memory = EvalJoin(JoinOp::kFullOuter, pred, left, right);
  QueryContext ctx(SpillEverythingLimits());
  ExecStats stats;
  Relation spilled = EvalJoin(JoinOp::kFullOuter, pred, left, right,
                              Executor::JoinPreference::kHash, &stats,
                              /*pool=*/nullptr, &ctx);
  ASSERT_FALSE(ctx.HasError()) << ctx.StopStatus().ToString();
  ExpectIdentical(in_memory, spilled, "skewed grace join");
  EXPECT_GT(stats.spilled_partitions, 0);
}

TEST(GovernorSpillTest, CompensationOpsSpilledByteIdentical) {
  // A left outerjoin output has relation-block NULL patterns — exactly the
  // input shape the compensation operators see in rewritten plans.
  Relation left = BigRel(0, 300, 13, /*key_domain=*/20);
  Relation right = BigRel(1, 250, 17, /*key_domain=*/20);
  Relation joined = EvalJoin(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a"),
                             left, right);
  ASSERT_GT(joined.NumRows(), 0);

  {
    QueryContext ctx(SpillEverythingLimits());
    ExecStats stats;
    Relation spilled = EvalBeta(joined, &ctx, &stats);
    ASSERT_FALSE(ctx.HasError()) << ctx.StopStatus().ToString();
    ExpectIdentical(EvalBeta(joined), spilled, "external-sort beta");
    EXPECT_GT(stats.spilled_sort_runs, 0);
    EXPECT_EQ(ctx.tracker()->used(), 0);
  }
  {
    QueryContext ctx(SpillEverythingLimits());
    Relation governed =
        EvalLambda(EquiJoin(0, "b", 1, "b"), RelSet::Single(1), joined,
                   /*pool=*/nullptr, &ctx);
    ASSERT_FALSE(ctx.HasError());
    ExpectIdentical(EvalLambda(EquiJoin(0, "b", 1, "b"), RelSet::Single(1),
                               joined),
                    governed, "governed lambda");
  }
  {
    QueryContext ctx(SpillEverythingLimits());
    Relation governed = EvalGamma(RelSet::Single(1), joined,
                                  /*pool=*/nullptr, &ctx);
    ASSERT_FALSE(ctx.HasError());
    ExpectIdentical(EvalGamma(RelSet::Single(1), joined), governed,
                    "governed gamma");
  }
  {
    QueryContext ctx(SpillEverythingLimits());
    ExecStats stats;
    Relation governed =
        EvalGammaStar(RelSet::Single(1), RelSet::Single(0), joined,
                      /*pool=*/nullptr, &ctx, &stats);
    ASSERT_FALSE(ctx.HasError()) << ctx.StopStatus().ToString();
    ExpectIdentical(EvalGammaStar(RelSet::Single(1), RelSet::Single(0),
                                  joined),
                    governed, "governed gamma*");
    EXPECT_GT(stats.spilled_sort_runs, 0);  // gamma*'s best-match spilled
  }
}

// Whole optimized plans, spilled vs in-memory, across random queries: the
// materializing engine's governed run must match its ungoverned run
// byte for byte, and the tracker must balance to zero.
TEST(GovernorSpillTest, GovernedPlansMatchUngovernedAndBalance) {
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 977 + 5);
    RandomDataOptions dopts;
    dopts.max_rows = 16;
    RandomQueryOptions qopts;
    qopts.num_rels = 4;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    auto best = Optimizer().Optimize(*query, db);
    ASSERT_NE(best.plan, nullptr);

    Executor plain;
    Relation expected = plain.Execute(*best.plan, db);

    QueryContext ctx(SpillEverythingLimits());
    Executor governed;
    StatusOr<Relation> got = governed.ExecuteWithContext(*best.plan, db,
                                                         &ctx);
    ASSERT_TRUE(got.ok()) << "seed " << seed << ": "
                          << got.status().ToString();
    ExpectIdentical(expected, *got, "seed " + std::to_string(seed));
    EXPECT_EQ(ctx.tracker()->used(), 0) << "seed " << seed;
    EXPECT_GT(governed.stats().peak_bytes, 0) << "seed " << seed;
  }
}

TEST(GovernorLimitTest, HardLimitUnwindsWithResourceExhausted) {
  Relation left = BigRel(0, 500, 19, /*key_domain=*/4);
  Relation right = BigRel(1, 500, 23, /*key_domain=*/4);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  PlanPtr plan = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a"),
                            Plan::Leaf(0), Plan::Leaf(1));
  QueryContext::Limits limits;
  limits.mem_limit_bytes = 64 << 10;  // far below the join's output
  QueryContext ctx(limits);
  Executor ex;
  StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
}

TEST(GovernorLimitTest, DeadlineUnwindsWithDeadlineExceeded) {
  Rng rng(41);
  RandomDataOptions dopts;
  dopts.max_rows = 24;
  Database db = RandomDatabase(rng, 3, dopts);
  RandomQueryOptions qopts;
  qopts.num_rels = 3;
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  // Every governed clock observation advances fake time 1ms past a 2ms
  // budget, so the deadline fires at the executor's first few checks.
  ScopedFaultClock clock(/*now_ms=*/100, /*step_ms=*/1);
  QueryContext::Limits limits;
  limits.timeout_ms = 2;
  QueryContext ctx(limits);
  ctx.Arm();
  Executor ex;
  StatusOr<Relation> got = ex.ExecuteWithContext(*query, db, &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status().ToString();
}

// Regression for deadline granularity inside fused pipelines: the old
// executor only observed the clock between operator phases, so a fused
// probe+compensation pipeline over a large input could overrun its
// deadline by the whole pipeline's runtime. Checks now happen at morsel
// boundaries: with single-row morsels and a fake clock that advances 1ms
// per governed observation, a 2ms budget must fire within the first few
// morsels of a long join — deterministically, no sleeps involved.
TEST(GovernorLimitTest, DeadlineObservedAtMorselBoundariesInFusedPipeline) {
  Relation left = BigRel(0, 2000, 53, /*key_domain=*/30);
  Relation right = BigRel(1, 2000, 59, /*key_domain=*/30);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  // Lambda over a full outer join fuses into the probe pipeline; the
  // deadline must still be observed inside the fused loop.
  PlanPtr plan = Plan::Comp(
      CompOp::Lambda(EquiJoin(0, "b", 1, "b", "pb"), RelSet::Single(1)),
      Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)));
  ScopedFaultClock clock(/*now_ms=*/100, /*step_ms=*/1);
  QueryContext::Limits limits;
  limits.timeout_ms = 2;
  QueryContext ctx(limits);
  ctx.Arm();
  Executor::Options opts;
  opts.tuning.morsel_rows = 1;  // a check per row: the tightest granularity
  Executor ex(opts);
  StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status().ToString();
}

// Cancellation mid-morsel-stream: kCancelRace flips the token from inside
// a governor probe once a few morsels are already done; the fused
// pipeline must unwind with a clean kCancelled at the next boundary.
TEST(GovernorLimitTest, CancelMidMorselUnwindsCleanly) {
  Relation left = BigRel(0, 600, 61, /*key_domain=*/12);
  Relation right = BigRel(1, 600, 67, /*key_domain=*/12);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  PlanPtr plan = Plan::Comp(
      CompOp::Gamma(RelSet::Single(1)),
      Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)));
  for (int64_t skip : {int64_t{2}, int64_t{10}}) {
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kCancelRace, skip);
    QueryContext ctx;
    Executor::Options opts;
    opts.tuning.morsel_rows = 8;
    Executor ex(opts);
    StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
    ASSERT_FALSE(got.ok()) << "skip " << skip;
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << "skip " << skip;
  }
  FaultInjector::Reset();
}

TEST(GovernorLimitTest, CancellationUnwindsWithCancelled) {
  Rng rng(43);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 3, dopts);
  RandomQueryOptions qopts;
  qopts.num_rels = 3;
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  QueryContext ctx;
  ctx.cancel_token()->Cancel();
  Executor ex;
  StatusOr<Relation> got = ex.ExecuteWithContext(*query, db, &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
}

// kCancelRace flips the token from inside a governor probe mid-execution —
// the unwind must still be a clean kCancelled, wherever it lands.
TEST(GovernorLimitTest, InjectedCancelRaceUnwindsCleanly) {
  Relation left = BigRel(0, 200, 29, /*key_domain=*/10);
  Relation right = BigRel(1, 200, 31, /*key_domain=*/10);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  PlanPtr plan = Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a"),
                            Plan::Leaf(0), Plan::Leaf(1));
  for (int64_t skip : {int64_t{0}, int64_t{1}, int64_t{3}}) {
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kCancelRace, skip);
    QueryContext ctx(SpillEverythingLimits());
    Executor ex;
    StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
    ASSERT_FALSE(got.ok()) << "skip " << skip;
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << "skip " << skip;
  }
  FaultInjector::Reset();
}

TEST(GovernorLimitTest, InjectedAllocationFaultUnwindsCleanly) {
  Relation left = BigRel(0, 200, 37, /*key_domain=*/10);
  Relation right = BigRel(1, 200, 41, /*key_domain=*/10);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  PlanPtr plan = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a"),
                            Plan::Leaf(0), Plan::Leaf(1));
  for (int64_t skip : {int64_t{0}, int64_t{1}, int64_t{2}}) {
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kExecAllocation, skip);
    QueryContext::Limits limits;
    limits.mem_limit_bytes = int64_t{1} << 30;
    QueryContext ctx(limits);
    Executor ex;
    StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
    ASSERT_FALSE(got.ok()) << "skip " << skip;
    EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
        << "skip " << skip << ": " << got.status().ToString();
  }
  FaultInjector::Reset();
}

// Spill I/O faults at every early stage (mkdir, open, first writes): the
// query must fail with a Status — never abort — and the spill directory
// must hold zero orphaned files afterwards.
TEST(GovernorLimitTest, SpillIoFaultFailsCleanlyWithoutOrphanFiles) {
  namespace fs = std::filesystem;
  Relation left = BigRel(0, 300, 43, /*key_domain=*/10);
  Relation right = BigRel(1, 300, 47, /*key_domain=*/10);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  PlanPtr plan = Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a"),
                            Plan::Leaf(0), Plan::Leaf(1));
  const std::string base =
      (fs::temp_directory_path() / "eca-governor-test-spill").string();
  for (int64_t skip = 0; skip < 6; ++skip) {
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kSpillIo, skip);
    {
      // Inner scope: the context owns a per-query subdirectory of `base`
      // that its destructor removes; the orphan count below must run
      // after that removal, like the startup sweep would.
      QueryContext::Limits limits = SpillEverythingLimits();
      limits.spill_dir = base;
      QueryContext ctx(limits);
      Executor ex;
      StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
      ASSERT_FALSE(got.ok()) << "skip " << skip;
      EXPECT_EQ(got.status().code(), StatusCode::kDataLoss)
          << "skip " << skip << ": " << got.status().ToString();
    }
    // SpillDir's RAII cleanup must have removed every temp file even on
    // the error path, and ~QueryContext the per-query subdirectory.
    int64_t orphans = 0;
    if (fs::exists(base)) {
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        (void)entry;
        ++orphans;
      }
    }
    EXPECT_EQ(orphans, 0) << "skip " << skip;
  }
  FaultInjector::Reset();
  std::error_code ec;
  fs::remove_all(base, ec);
}

// The nastier spill-write failure shapes: a partial write() return that
// physically tears the record on disk, and ENOSPC refusing the write or
// the flush. Both must unwind with a clean kDataLoss and leave zero
// orphaned files — exactly like the plain fault above.
TEST(GovernorLimitTest, SpillIoVariantFaultsFailCleanlyWithoutOrphans) {
  namespace fs = std::filesystem;
  Relation left = BigRel(0, 300, 43, /*key_domain=*/10);
  Relation right = BigRel(1, 300, 47, /*key_domain=*/10);
  Database db;
  db.Add(std::move(left));
  db.Add(std::move(right));
  PlanPtr plan = Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a"),
                            Plan::Leaf(0), Plan::Leaf(1));
  const std::string base =
      (fs::temp_directory_path() / "eca-governor-variant-spill").string();
  for (FaultVariant variant :
       {FaultVariant::kShortWrite, FaultVariant::kEnospc}) {
    for (int64_t skip = 0; skip < 6; ++skip) {
      FaultInjector::Reset();
      ScopedFault fault(FaultPoint::kSpillIo, skip, variant);
      {
        QueryContext::Limits limits = SpillEverythingLimits();
        limits.spill_dir = base;
        QueryContext ctx(limits);
        Executor ex;
        StatusOr<Relation> got = ex.ExecuteWithContext(*plan, db, &ctx);
        ASSERT_FALSE(got.ok())
            << FaultVariantName(variant) << " skip " << skip;
        EXPECT_EQ(got.status().code(), StatusCode::kDataLoss)
            << FaultVariantName(variant) << " skip " << skip << ": "
            << got.status().ToString();
      }
      // Even with a torn record physically on disk, RAII cleanup must
      // remove every temp file and the per-query subdirectory.
      int64_t orphans = 0;
      if (fs::exists(base)) {
        for (const auto& entry : fs::recursive_directory_iterator(base)) {
          (void)entry;
          ++orphans;
        }
      }
      EXPECT_EQ(orphans, 0) << FaultVariantName(variant) << " skip " << skip;
    }
  }
  FaultInjector::Reset();
  std::error_code ec;
  fs::remove_all(base, ec);
}

// The short-write variant must actually tear the file — a prefix of the
// failed record lands on disk — and the reader must keep every record
// before the tear while rejecting the torn tail with a checksum error,
// never a crash.
TEST(GovernorLimitTest, SpillShortWritePhysicallyTearsTheRecord) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "eca-governor-shortwrite").string();
  fs::create_directories(dir);
  const std::string path = dir + "/torn.spill";

  Tuple row = {I(7), S("payload"), N()};

  // Control file: one clean record, to learn the encoded record size.
  const std::string control = dir + "/control.spill";
  {
    SpillWriter cw;
    ASSERT_TRUE(cw.Open(control, nullptr).ok());
    ASSERT_TRUE(cw.Append(/*tag=*/1, row).ok());
    ASSERT_TRUE(cw.Finish().ok());
  }
  const uintmax_t record_size = fs::file_size(control);
  ASSERT_GT(record_size, 0u);

  SpillWriter w;
  ASSERT_TRUE(w.Open(path, nullptr).ok());
  ASSERT_TRUE(w.Append(/*tag=*/1, row).ok());
  {
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kSpillIo, /*skip=*/0,
                      FaultVariant::kShortWrite);
    Status torn = w.Append(/*tag=*/2, row);
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.code(), StatusCode::kDataLoss);
    EXPECT_NE(torn.message().find("short write"), std::string::npos)
        << torn.ToString();
  }
  FaultInjector::Reset();
  (void)w.Finish();

  // The tear is physical: more bytes than one full record (a prefix of
  // the failed record landed), fewer than two (it did not all land).
  const uintmax_t final_size = fs::file_size(path);
  EXPECT_GT(final_size, record_size);
  EXPECT_LT(final_size, 2 * record_size);

  // Read back: record 1 intact, then the torn tail must fail (truncated
  // or checksum mismatch — both are kDataLoss), not parse as a record.
  SpillReader r;
  ASSERT_TRUE(r.Open(path, nullptr).ok());
  uint64_t tag = 0;
  Tuple got;
  bool eof = false;
  ASSERT_TRUE(r.Next(&tag, &got, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_EQ(tag, 1u);
  EXPECT_EQ(CompareTuples(row, got), 0);
  Status tail = r.Next(&tag, &got, &eof);
  ASSERT_FALSE(tail.ok());
  EXPECT_EQ(tail.code(), StatusCode::kDataLoss) << tail.ToString();
  r.Close();

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// The pull (iterator) engine honors the same contract at its single
// materialization point.
TEST(GovernorPullTest, GovernedPullMatchesUngovernedPull) {
  Rng rng(53);
  RandomDataOptions dopts;
  dopts.max_rows = 16;
  Database db = RandomDatabase(rng, 3, dopts);
  RandomQueryOptions qopts;
  qopts.num_rels = 3;
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  Relation expected = ExecutePull(*query, db);
  QueryContext ctx(SpillEverythingLimits());
  StatusOr<Relation> got = ExecutePullGoverned(*query, db, &ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(expected, *got, "governed pull");
  EXPECT_EQ(ctx.tracker()->used(), 0);
}

TEST(GovernorPullTest, GovernedPullObservesCancellation) {
  Rng rng(59);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 3, dopts);
  RandomQueryOptions qopts;
  qopts.num_rels = 3;
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  QueryContext ctx;
  ctx.cancel_token()->Cancel();
  StatusOr<Relation> got = ExecutePullGoverned(*query, db, &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
}

// Parallel governed execution must stay byte-identical to sequential
// governed execution (the PR 2 invariant extended to the spill paths).
TEST(GovernorSpillTest, ThreadedGovernedExecutionIdentical) {
  Rng rng(61);
  RandomDataOptions dopts;
  dopts.max_rows = 16;
  Database db = RandomDatabase(rng, 4, dopts);
  RandomQueryOptions qopts;
  qopts.num_rels = 4;
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  auto best = Optimizer().Optimize(*query, db);
  ASSERT_NE(best.plan, nullptr);

  QueryContext seq_ctx(SpillEverythingLimits());
  Executor seq;
  StatusOr<Relation> seq_out = seq.ExecuteWithContext(*best.plan, db,
                                                      &seq_ctx);
  ASSERT_TRUE(seq_out.ok()) << seq_out.status().ToString();
  for (int threads : {2, 4}) {
    QueryContext ctx(SpillEverythingLimits());
    Executor::Options opts;
    opts.num_threads = threads;
    Executor ex(opts);
    StatusOr<Relation> got = ex.ExecuteWithContext(*best.plan, db, &ctx);
    ASSERT_TRUE(got.ok()) << "threads " << threads << ": "
                          << got.status().ToString();
    ExpectIdentical(*seq_out, *got,
                    "threads " + std::to_string(threads));
    EXPECT_EQ(ctx.tracker()->used(), 0) << "threads " << threads;
  }
}

// Multi-query accounting (the ecad admission model): N concurrent
// governed queries all chain their trackers to one shared root whose soft
// threshold is so tight that every query runs under cross-query spill
// pressure. Each result must still be byte-identical to that query's solo
// ungoverned run — concurrency may change *when* queries spill, never
// *what* they produce — and the root must balance to zero afterwards.
TEST(GovernorSharedRootTest, ConcurrentQueriesUnderOneRootStayIdentical) {
  constexpr int kQueries = 6;
  std::vector<Database> dbs(kQueries);
  std::vector<PlanPtr> plans(kQueries);
  std::vector<Relation> expected;
  for (int q = 0; q < kQueries; ++q) {
    Rng rng(static_cast<uint64_t>(q) * 131 + 7);
    RandomDataOptions dopts;
    dopts.max_rows = 16 + 8 * (q % 3);  // mixed workload sizes
    RandomQueryOptions qopts;
    qopts.num_rels = 3 + q % 2;
    dbs[q] = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    auto best = Optimizer().Optimize(*query, dbs[q]);
    ASSERT_NE(best.plan, nullptr) << "query " << q;
    plans[q] = std::move(best.plan);
    Executor plain;
    expected.push_back(plain.Execute(*plans[q], dbs[q]));
  }

  // Soft threshold of one byte at the root: every child reservation sees
  // SoftExceeded through the parent chain. Hard limit high enough that
  // all queries succeed — the point is contention, not rejection.
  MemoryTracker root(/*soft_bytes=*/1, /*hard_bytes=*/int64_t{1} << 30);
  std::vector<StatusOr<Relation>> results(
      kQueries, StatusOr<Relation>(Status::Internal("not run")));
  std::vector<int64_t> leftover(kQueries, -1);
  {
    std::vector<std::thread> workers;
    workers.reserve(kQueries);
    for (int q = 0; q < kQueries; ++q) {
      workers.emplace_back([&, q] {
        QueryContext::Limits limits;
        limits.mem_limit_bytes = int64_t{1} << 30;
        limits.parent_tracker = &root;
        QueryContext ctx(limits);
        Executor ex;
        results[q] = ex.ExecuteWithContext(*plans[q], dbs[q], &ctx);
        leftover[q] = ctx.tracker()->used();
      });
    }
    for (std::thread& t : workers) t.join();
  }
  for (int q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(results[q].ok())
        << "query " << q << ": " << results[q].status().ToString();
    ExpectIdentical(expected[q], *results[q],
                    "shared-root query " + std::to_string(q));
    EXPECT_EQ(leftover[q], 0) << "query " << q;
  }
  EXPECT_EQ(root.used(), 0);
  EXPECT_GT(root.peak(), 0);
}

}  // namespace
}  // namespace eca
