#include <gtest/gtest.h>

#include "exec/executor.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

// --------------------------------------------------------------------------
// beta (best-match)
// --------------------------------------------------------------------------

// Example 2.1 from the paper: on R(A,B,C) =
//   (a1, b1, c1)
//   (a1, null, c2)
//   (null, b1, null)   <- dominated by (a1, b1, c1)
//   (a1, null, c1)     <- dominated by (a1, b1, c1)
// and a duplicate of row 1; beta keeps rows 1 and 2.
TEST(BetaTest, PaperExample21) {
  Relation r = MakeRelation(
      {{0, "A", DataType::kString},
       {0, "B", DataType::kString},
       {0, "C", DataType::kString}},
      {{S("a1"), S("b1"), S("c1")},
       {S("a1"), N(), S("c2")},
       {N(), S("b1"), N()},
       {S("a1"), N(), S("c1")},
       {S("a1"), S("b1"), S("c1")}});  // exact duplicate of the first tuple
  Relation expected = MakeRelation(
      {{0, "A", DataType::kString},
       {0, "B", DataType::kString},
       {0, "C", DataType::kString}},
      {{S("a1"), S("b1"), S("c1")}, {S("a1"), N(), S("c2")}});
  ExpectSameRelation(expected, EvalBeta(r));
  ExpectSameRelation(expected, EvalBetaNaive(r));
}

TEST(BetaTest, KeepsIncomparableTuples) {
  // (1, null) and (null, 2) do not dominate each other.
  Relation r = MakeRelation(
      {{0, "A", DataType::kInt64}, {0, "B", DataType::kInt64}},
      {{I(1), N()}, {N(), I(2)}});
  EXPECT_EQ(EvalBeta(r).NumRows(), 2);
}

TEST(BetaTest, AllNullDominatedByAnything) {
  Relation r = MakeRelation(
      {{0, "A", DataType::kInt64}, {0, "B", DataType::kInt64}},
      {{N(), N()}, {I(1), N()}});
  Relation out = EvalBeta(r);
  ASSERT_EQ(out.NumRows(), 1);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 1);
}

TEST(BetaTest, EmptyAndSingleton) {
  Relation empty(Schema({{0, "A", DataType::kInt64}}));
  EXPECT_EQ(EvalBeta(empty).NumRows(), 0);
  Relation single = MakeRelation({{0, "A", DataType::kInt64}}, {{I(3)}});
  EXPECT_EQ(EvalBeta(single).NumRows(), 1);
}

TEST(BetaTest, AllNullTupleIsSpurious) {
  // Minimum-union convention (see EvalBeta documentation): the all-NULL
  // tuple is the identity of the domination order and is always removed.
  Relation r = MakeRelation(
      {{0, "A", DataType::kInt64}, {0, "B", DataType::kInt64}},
      {{N(), N()}, {I(1), N()}});
  Relation out = EvalBeta(r);
  ASSERT_EQ(out.NumRows(), 1);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 1);
  Relation only_null = MakeRelation(
      {{0, "A", DataType::kInt64}, {0, "B", DataType::kInt64}},
      {{N(), N()}});
  EXPECT_EQ(EvalBeta(only_null).NumRows(), 0);
  EXPECT_EQ(EvalBetaNaive(only_null).NumRows(), 0);
}

TEST(BetaTest, IdempotentOnRandomInputs) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    RandomDataOptions opts;
    opts.null_prob = 0.5;
    opts.max_rows = 20;
    opts.data_cols = 3;
    Relation r = RandomRelation(rng, 0, opts);
    Relation once = EvalBeta(r);
    Relation twice = EvalBeta(once);
    ExpectSameRelation(once, twice, "beta should be idempotent (CBA Eq. 3)");
  }
}

TEST(BetaTest, SortedImplementationMatchesNaive) {
  // The paper's sort-based best-match (Section 6.1) against the
  // definitional reference, on per-column NULL patterns.
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 9000);
    RandomDataOptions opts;
    opts.null_prob = 0.45;
    opts.domain = 3;
    opts.data_cols = 3;
    opts.max_rows = 24;
    Relation with_key = RandomRelation(rng, 0, opts);
    Schema s({{0, "a", DataType::kInt64},
              {0, "b", DataType::kInt64},
              {0, "c", DataType::kInt64}});
    Relation r(s);
    for (const Tuple& t : with_key.rows()) {
      r.Add({t[1], t[2], t[3]});
    }
    ExpectSameRelation(EvalBetaNaive(r), EvalBetaSorted(r),
                       "sorted beta vs naive definition");
  }
}

TEST(BetaTest, SortedImplementationMatchesFastOnPlanShapes) {
  for (int seed = 0; seed < 25; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 12000);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 2, opts);
    Relation joined = EvalJoin(JoinOp::kLeftOuter,
                               EquiJoin(0, "a", 1, "a", "p"), db.table(0),
                               db.table(1));
    Relation lam = EvalLambda(EquiJoin(0, "b", 1, "b", "q"),
                              RelSet::Single(1), joined);
    ExpectSameRelation(EvalBeta(lam), EvalBetaSorted(lam),
                       "sorted beta vs pattern-grouped beta");
  }
}

TEST(BetaTest, FastPathMatchesNaiveOnRandomInputs) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 1000);
    // Drop the unique key column to stress per-attribute domination:
    // generate, then project away "k" by rebuilding without it.
    RandomDataOptions opts;
    opts.null_prob = 0.45;
    opts.domain = 3;
    opts.data_cols = 3;
    opts.max_rows = 24;
    Relation with_key = RandomRelation(rng, 0, opts);
    Schema s({{0, "a", DataType::kInt64},
              {0, "b", DataType::kInt64},
              {0, "c", DataType::kInt64}});
    Relation r(s);
    for (const Tuple& t : with_key.rows()) {
      r.Add({t[1], t[2], t[3]});
    }
    ExpectSameRelation(EvalBetaNaive(r), EvalBeta(r),
                       "pattern-grouped beta vs naive definition");
  }
}

// --------------------------------------------------------------------------
// lambda (nullification)
// --------------------------------------------------------------------------

TEST(LambdaTest, NullifiesFailingTuplesOnly) {
  Relation r = MakeRelation(
      {{0, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      {{I(1), I(1)}, {I(1), I(2)}, {N(), I(3)}});
  PredRef p = Eq(Col(0, "a"), Col(1, "b"));
  // Nullify R1's attributes where a != b (or unknown).
  Relation out = EvalLambda(p, RelSet::Single(1), r);
  Relation expected = MakeRelation(
      {{0, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      {{I(1), I(1)}, {I(1), N()}, {N(), N()}});
  ExpectSameRelation(expected, out);
}

TEST(LambdaTest, FalsePredicateNullifiesEverything) {
  Relation r = MakeRelation(
      {{0, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      {{I(1), I(1)}, {I(2), I(2)}});
  Relation out = EvalLambda(Predicate::ConstBool(false),
                            RelSet::FirstN(2), r);
  for (const Tuple& t : out.rows()) {
    EXPECT_TRUE(t[0].is_null());
    EXPECT_TRUE(t[1].is_null());
  }
  EXPECT_EQ(out.NumRows(), 2);
}

TEST(LambdaTest, PreservesRowCount) {
  Rng rng(7);
  RandomDataOptions opts;
  Relation r = RandomRelation(rng, 0, opts);
  Relation out = EvalLambda(Gt(Col(0, "a"), Lit(1)), RelSet::Single(0), r);
  EXPECT_EQ(out.NumRows(), r.NumRows());
}

// --------------------------------------------------------------------------
// gamma and gamma* (Example 4.1 of the paper)
// --------------------------------------------------------------------------

// R(A, B, C) with gamma_A selecting the tuple with NULL A, and
// gamma*_{A(B)} nulling A and C on the remaining tuples before best-match.
Relation Example41Input() {
  return MakeRelation({{0, "A", DataType::kString},
                       {1, "B", DataType::kString},
                       {2, "C", DataType::kString}},
                      {{S("a1"), S("b1"), S("c1")},
                       {N(), S("b1"), S("c2")},
                       {S("a2"), S("b2"), S("c3")}});
}

TEST(GammaTest, SelectsAllNullTuples) {
  Relation out = EvalGamma(RelSet::Single(0), Example41Input());
  ASSERT_EQ(out.NumRows(), 1);
  EXPECT_TRUE(out.rows()[0][0].is_null());
  EXPECT_EQ(out.rows()[0][1].AsStr(), "b1");
}

TEST(GammaStarTest, PaperExample41) {
  // gamma*_{A(B)}: the NULL-A tuple passes; the other two become
  // (null, b1, null) and (null, b2, null); (null, b1, null) is dominated by
  // the surviving (null, b1, c2) tuple, (null, b2, null) survives.
  Relation out = EvalGammaStar(RelSet::Single(0), RelSet::Single(1),
                               Example41Input());
  Relation expected = MakeRelation({{0, "A", DataType::kString},
                                    {1, "B", DataType::kString},
                                    {2, "C", DataType::kString}},
                                   {{N(), S("b1"), S("c2")},
                                    {N(), S("b2"), N()}});
  ExpectSameRelation(expected, out);
}

TEST(GammaStarTest, MatchesDefinitionComposition) {
  // gamma*_{A(B)}(R) must equal beta(gamma_A(R) UNION lambda_false(R - gamma_A(R)))
  // (Equation 8). Verified on random inputs.
  for (int seed = 0; seed < 25; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 55);
    RandomDataOptions opts;
    opts.null_prob = 0.4;
    opts.max_rows = 15;
    Database db = RandomDatabase(rng, 2, opts);
    Relation joined = EvalJoin(JoinOp::kLeftOuter,
                               EquiJoin(0, "a", 1, "a", "p01"),
                               db.table(0), db.table(1));
    RelSet a = RelSet::Single(1);
    RelSet keep = RelSet::Single(0);
    Relation fast = EvalGammaStar(a, keep, joined);

    // Composition per Equation 8.
    Relation selected = EvalGamma(a, joined);
    Relation rest(joined.schema());
    {
      std::vector<int> acols = joined.schema().ColumnsOf(a);
      for (const Tuple& t : joined.rows()) {
        bool all_null = true;
        for (int c : acols) {
          if (!t[static_cast<size_t>(c)].is_null()) all_null = false;
        }
        if (!all_null) rest.Add(t);
      }
    }
    Relation modified = EvalLambda(Predicate::ConstBool(false),
                                   joined.schema().rels().Minus(keep), rest);
    Relation unioned = selected;
    for (const Tuple& t : modified.rows()) unioned.Add(t);
    Relation expected = EvalBetaNaive(unioned);
    ExpectSameRelation(expected, fast, "gamma* vs Equation 8 composition");
  }
}

// --------------------------------------------------------------------------
// projection & canonicalization
// --------------------------------------------------------------------------

TEST(ProjectTest, RelationLevelProjection) {
  Relation r = MakeRelation(
      {{0, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      {{I(1), I(2)}, {I(3), I(4)}});
  Relation out = EvalProject(RelSet::Single(1), r);
  EXPECT_EQ(out.schema().NumColumns(), 1);
  EXPECT_EQ(out.NumRows(), 2);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 2);
}

TEST(ProjectTest, KeepsDuplicates) {
  Relation r = MakeRelation(
      {{0, "a", DataType::kInt64}, {1, "b", DataType::kInt64}},
      {{I(1), I(2)}, {I(9), I(2)}});
  Relation out = EvalProject(RelSet::Single(1), r);
  EXPECT_EQ(out.NumRows(), 2);  // bag projection: no dedup
}

TEST(CanonicalizeTest, ReordersColumns) {
  Relation r = MakeRelation(
      {{1, "b", DataType::kInt64}, {0, "a", DataType::kInt64}},
      {{I(2), I(1)}});
  Relation out = CanonicalizeColumnOrder(r);
  EXPECT_EQ(out.schema().column(0).rel_id, 0);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(out.rows()[0][1].AsInt(), 2);
}

// --------------------------------------------------------------------------
// Executor end-to-end on a small plan
// --------------------------------------------------------------------------

TEST(ExecutorTest, AntijoinViaOuterjoinGammaPi) {
  // Equation 9: R0 laj R1 == pi_{R0}(gamma_{R1}(R0 loj R1)).
  Rng rng(42);
  RandomDataOptions opts;
  Database db = RandomDatabase(rng, 2, opts);
  PredRef p = EquiJoin(0, "a", 1, "a", "p01");

  PlanPtr anti = Plan::Join(JoinOp::kLeftAnti, p, Plan::Leaf(0), Plan::Leaf(1));
  PlanPtr rewritten = Plan::Comp(
      CompOp::Project(RelSet::Single(0)),
      Plan::Comp(CompOp::Gamma(RelSet::Single(1)),
                 Plan::Join(JoinOp::kLeftOuter, p, Plan::Leaf(0),
                            Plan::Leaf(1))));
  ExpectPlansEquivalent(*anti, *rewritten, db);
}

TEST(ExecutorTest, StatsAccumulate) {
  Rng rng(5);
  Database db = RandomDatabase(rng, 2, RandomDataOptions());
  PlanPtr plan =
      Plan::Comp(CompOp::Beta(),
                 Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a"),
                            Plan::Leaf(0), Plan::Leaf(1)));
  Executor ex;
  ex.Execute(*plan, db);
  EXPECT_EQ(ex.stats().join_nodes, 1);
  EXPECT_EQ(ex.stats().comp_nodes, 1);
}

}  // namespace
}  // namespace eca
