// Tests for the TPC-H-style substrate and the paper's Section 7 queries.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "eca/optimizer.h"
#include "enumerate/enumerator.h"
#include "enumerate/subtree.h"
#include "exec/executor.h"
#include "tpch/paper_queries.h"
#include "tpch/tpch_gen.h"

#include "../test_util.h"

namespace eca {
namespace {

TpchData SmallData() { return GenerateTpch(TpchScale::OfSF(0.002), 7); }

TEST(TpchGenTest, CardinalitiesFollowScale) {
  TpchScale scale = TpchScale::OfSF(0.01);
  TpchData data = GenerateTpch(scale, 1);
  EXPECT_EQ(data.supplier.NumRows(), scale.suppliers);
  EXPECT_EQ(data.part.NumRows(), scale.parts);
  EXPECT_EQ(data.partsupp.NumRows(),
            scale.parts * scale.partsupp_per_part);
  EXPECT_EQ(data.orders.NumRows(), scale.orders);
  // ~4 lines per order on average (1..7 uniform).
  EXPECT_GT(data.lineitem.NumRows(), 2 * scale.orders);
  EXPECT_LT(data.lineitem.NumRows(), 7 * scale.orders);
}

TEST(TpchGenTest, ReferentialIntegrity) {
  TpchData data = SmallData();
  std::unordered_set<int64_t> suppliers;
  for (const Tuple& t : data.supplier.rows()) {
    suppliers.insert(t[0].AsInt());
  }
  std::set<std::pair<int64_t, int64_t>> ps_pairs;
  for (const Tuple& t : data.partsupp.rows()) {
    EXPECT_TRUE(suppliers.count(t[1].AsInt()))
        << "partsupp references unknown supplier " << t[1].AsInt();
    ps_pairs.insert({t[0].AsInt(), t[1].AsInt()});
  }
  // (partkey, suppkey) unique — the tuple-identity assumption.
  EXPECT_EQ(static_cast<int64_t>(ps_pairs.size()),
            data.partsupp.NumRows());
  // Every lineitem's (partkey, suppkey) must exist in partsupp.
  for (const Tuple& t : data.lineitem.rows()) {
    EXPECT_TRUE(ps_pairs.count({t[2].AsInt(), t[3].AsInt()}))
        << "lineitem references unregistered part/supplier pair";
  }
}

TEST(TpchGenTest, DeterministicForSeed) {
  TpchData a = GenerateTpch(TpchScale::OfSF(0.002), 99);
  TpchData b = GenerateTpch(TpchScale::OfSF(0.002), 99);
  EXPECT_TRUE(SameMultiset(a.lineitem, b.lineitem));
  TpchData c = GenerateTpch(TpchScale::OfSF(0.002), 100);
  EXPECT_FALSE(SameMultiset(a.lineitem, c.lineitem));
}

TEST(TpchGenTest, Filters) {
  TpchData data = SmallData();
  Relation filtered = FilterPartByName(data.part, "name0");
  EXPECT_GT(filtered.NumRows(), 0);
  EXPECT_LT(filtered.NumRows(), data.part.NumRows());
  Relation pricey = FilterOrdersByTotalPrice(data.orders, 350000.0);
  EXPECT_GT(pricey.NumRows(), 0);
  EXPECT_LT(pricey.NumRows(), data.orders.NumRows());
}

TEST(PaperQueriesTest, F12IncreasesWithNu) {
  TpchData data = SmallData();
  PaperQuery q = BuildQ1(data, 0.0);
  double f_low = MeasureF12(q.db, 0.0);
  double f_mid = MeasureF12(q.db, 50.0);
  double f_high = MeasureF12(q.db, 5000.0);
  EXPECT_LE(f_low, f_mid);
  EXPECT_LE(f_mid, f_high);
  EXPECT_GT(f_high, 0.5);  // large nu: most suppliers keep no match
}

class PaperQueryOptimization : public ::testing::TestWithParam<int> {};

TEST_P(PaperQueryOptimization, EcaPlanEquivalentToDirect) {
  int which = GetParam();
  TpchData data = SmallData();
  double nu = 5.0;
  PaperQuery q = which == 0   ? BuildQ1(data, nu)
                 : which == 1 ? BuildQ2(data, nu)
                              : BuildQ3(data, nu);
  CostModel cost = CostModel::FromDatabase(q.db);
  EnumeratorOptions opts;
  opts.reuse_subplans = true;
  TopDownEnumerator eca(&cost, opts);
  auto result = eca.Optimize(*q.plan);
  ASSERT_NE(result.plan, nullptr);
  ExpectPlansEquivalent(*q.plan, *result.plan, q.db,
                        q.name + " ECA plan must match the direct plan");
}

TEST_P(PaperQueryOptimization, TbaPlanEquivalentToDirect) {
  int which = GetParam();
  TpchData data = SmallData();
  PaperQuery q = which == 0   ? BuildQ1(data, 5.0)
                 : which == 1 ? BuildQ2(data, 5.0)
                              : BuildQ3(data, 5.0);
  CostModel cost = CostModel::FromDatabase(q.db);
  EnumeratorOptions opts;
  opts.policy = SwapPolicy::kTBA;
  opts.reuse_subplans = true;
  TopDownEnumerator tba(&cost, opts);
  auto result = tba.Optimize(*q.plan);
  ASSERT_NE(result.plan, nullptr);
  ExpectPlansEquivalent(*q.plan, *result.plan, q.db, q.name + " TBA plan");
}

INSTANTIATE_TEST_SUITE_P(Q123, PaperQueryOptimization,
                         ::testing::Range(0, 3));

// With cross-sample selectivity estimation the ECA optimizer's cost-based
// choice tracks the f12 sweep: the direct plan wins at tiny f12, the
// compensated reordering beyond the crossover — the paper's premise that
// the enlarged search space pays off under a cost model.
TEST(PaperQueriesTest, CostBasedChoiceTracksSelectivity) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.005), 7);
  Optimizer::Options oo;
  Optimizer eca{oo};
  PaperQuery low = BuildQ1(data, 0.0);
  auto pick_low = eca.Optimize(*low.plan, low.db);
  EXPECT_EQ(OrderingKey(*pick_low.plan), "(R0,(R1,R2))")
      << pick_low.plan->ToString();
  PaperQuery high = BuildQ1(data, 10000.0);
  auto pick_high = eca.Optimize(*high.plan, high.db);
  EXPECT_EQ(OrderingKey(*pick_high.plan), "((R0,R1),R2)")
      << pick_high.plan->ToString();
}

// Q1's two antijoins cannot be reordered by a conventional optimizer
// (assoc(laj, laj) is invalid), so TBA is stuck with the direct ordering;
// ECA can evaluate (R1, R2) first — the paper's Figure 5(a)/(b) pair.
TEST(PaperQueriesTest, Q1OnlyEcaCanReorder) {
  TpchData data = SmallData();
  PaperQuery q = BuildQ1(data, 20.0);
  CostModel cost = CostModel::FromDatabase(q.db);

  EnumeratorOptions tba_opts;
  tba_opts.policy = SwapPolicy::kTBA;
  TopDownEnumerator tba(&cost, tba_opts);
  auto tba_result = tba.Optimize(*q.plan);
  EXPECT_EQ(OrderingKey(*tba_result.plan), OrderingKey(*q.plan));

  // ECA has the choice; at high nu (high f12) the (R1 loj R2)-first plan
  // should win under the cost model — but at minimum it must be reachable.
  EnumeratorOptions eca_opts;
  TopDownEnumerator eca(&cost, eca_opts);
  auto eca_result = eca.Optimize(*q.plan);
  ASSERT_NE(eca_result.plan, nullptr);
  EXPECT_LE(eca_result.cost, tba_result.cost * 1.0001);
}

}  // namespace
}  // namespace eca
