// Tests for the top-down plan enumerator (Algorithms 1-6):
//  - every plan it returns must evaluate identically to the input query;
//  - the enhanced mode (subplan reuse, d-edges) must agree with the basic
//    mode on cost and stay equivalent to the query;
//  - the ECA policy must reach EVERY join ordering for the
//    no-full-outerjoin class (Theorem 3.2(a): complete reorderability),
//    while TBA and CBA reach incomparable subsets.

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "enumerate/join_order.h"
#include "enumerate/realize.h"
#include "enumerate/subtree.h"
#include "exec/executor.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

class EnumeratorRandomized : public ::testing::TestWithParam<int> {};

TEST_P(EnumeratorRandomized, OptimizedPlanEquivalentToQuery) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 1337 + 5);
  RandomDataOptions dopts;
  dopts.max_rows = 7;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;  // 3..5 relations
  qopts.allow_full_outer = seed % 4 == 0;  // Section 5.3 partial support
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);

  CostModel cost = CostModel::FromDatabase(db);
  EnumeratorOptions opts;
  opts.reuse_subplans = false;
  TopDownEnumerator basic(&cost, opts);
  auto result = basic.Optimize(*query);
  ASSERT_NE(result.plan, nullptr);
  ExpectPlansEquivalent(*query, *result.plan, db,
                        "optimizer output must preserve query semantics");
}

TEST_P(EnumeratorRandomized, EnhancedAgreesWithBasic) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7001 + 11);
  RandomDataOptions dopts;
  dopts.max_rows = 7;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);

  EnumeratorOptions basic_opts;
  basic_opts.reuse_subplans = false;
  EnumeratorOptions enhanced_opts;
  enhanced_opts.reuse_subplans = true;
  TopDownEnumerator basic(&cost, basic_opts);
  TopDownEnumerator enhanced(&cost, enhanced_opts);
  auto rb = basic.Optimize(*query);
  auto re = enhanced.Optimize(*query);
  ASSERT_NE(rb.plan, nullptr);
  ASSERT_NE(re.plan, nullptr);
  ExpectPlansEquivalent(*query, *re.plan, db,
                        "enhanced optimizer must preserve query semantics");
  // Reuse may only improve or match the chosen plan's estimated cost
  // within a small numeric tolerance (both explore the same space).
  EXPECT_NEAR(rb.cost, re.cost, 1e-6 + 0.01 * rb.cost)
      << "basic plan:\n"
      << rb.plan->ToString() << "enhanced plan:\n"
      << re.plan->ToString();
}

TEST_P(EnumeratorRandomized, TBAPolicyAlsoSound) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 909 + 3);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 4;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);
  EnumeratorOptions opts;
  opts.policy = SwapPolicy::kTBA;
  opts.reuse_subplans = false;
  TopDownEnumerator tba(&cost, opts);
  auto result = tba.Optimize(*query);
  ASSERT_NE(result.plan, nullptr);
  ExpectPlansEquivalent(*query, *result.plan, db, "TBA policy");
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratorRandomized,
                         ::testing::Range(0, 24));

// --------------------------------------------------------------------------
// Theorem 3.2: reorderability completeness
// --------------------------------------------------------------------------

// The set of orderings theta for which Q is theta-reorderable under the
// given policy (Section 3), established constructively via RealizeOrdering.
std::set<std::string> RealizableOrderings(const Plan& query,
                                          SwapPolicy policy) {
  std::set<std::string> out;
  for (const OrderingNodePtr& theta : AllJoinOrderingTrees(
           query.leaves(), PredicateRefSets(query))) {
    PlanPtr realized = RealizeOrdering(query, *theta, policy);
    if (realized != nullptr) out.insert(theta->Key());
  }
  return out;
}

class Reorderability : public ::testing::TestWithParam<int> {};

TEST_P(Reorderability, ECACompleteForNoFullOuterClass) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 37 + 19);
  RandomDataOptions dopts;
  dopts.max_rows = 4;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 2;  // 3..4 relations
  qopts.allow_full_outer = false;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);

  // Every ordering must be realizable (Theorem 3.2a) and every realized
  // plan must follow its ordering and evaluate like the query.
  int realized_count = 0;
  auto thetas =
      AllJoinOrderingTrees(query->leaves(), PredicateRefSets(*query));
  for (const OrderingNodePtr& theta : thetas) {
    PlanPtr realized = RealizeOrdering(*query, *theta, SwapPolicy::kECA);
    ASSERT_NE(realized, nullptr)
        << "query:\n" << query->ToString() << "unreachable ordering "
        << theta->Key();
    ++realized_count;
    EXPECT_EQ(OrderingKey(*realized), theta->Key())
        << "realized plan does not follow the requested ordering:\n"
        << realized->ToString();
    ExpectPlansEquivalent(*query, *realized, db,
                          "realized ordering " + theta->Key());
  }
  EXPECT_EQ(realized_count, static_cast<int>(thetas.size()));
  EXPECT_GE(realized_count, 1);
}

TEST_P(Reorderability, BaselinesReachSubsets) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 53 + 7);
  RandomDataOptions dopts;
  dopts.max_rows = 4;
  RandomQueryOptions qopts;
  qopts.num_rels = 4;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);

  (void)cost;
  std::set<std::string> eca = RealizableOrderings(*query, SwapPolicy::kECA);
  std::set<std::string> tba = RealizableOrderings(*query, SwapPolicy::kTBA);
  std::set<std::string> cba = RealizableOrderings(*query, SwapPolicy::kCBA);
  for (const std::string& k : tba) {
    EXPECT_TRUE(eca.count(k)) << "TBA ordering missing from ECA: " << k;
  }
  for (const std::string& k : cba) {
    EXPECT_TRUE(eca.count(k)) << "CBA ordering missing from ECA: " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Reorderability, ::testing::Range(0, 16));

// The paper's motivating example (Section 1 / Example 3.1):
// Q = R0 loj[p01] (R1 join[p12] R2). assoc(loj, join) is invalid, so TBA
// cannot put (R0, R1) first; CBA and ECA can, via beta(lambda(...)).
TEST(ReorderabilityExamples, MotivatingOuterJoinExample) {
  Rng rng(4242);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 3, dopts);
  PlanPtr query = Plan::Join(
      JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  CostModel cost = CostModel::FromDatabase(db);

  std::set<std::string> all =
      AllJoinOrderings(query->leaves(), PredicateRefSets(*query));
  EXPECT_EQ(all.size(), 2u);

  (void)cost;
  std::set<std::string> tba = RealizableOrderings(*query, SwapPolicy::kTBA);
  std::set<std::string> cba = RealizableOrderings(*query, SwapPolicy::kCBA);
  std::set<std::string> eca = RealizableOrderings(*query, SwapPolicy::kECA);
  EXPECT_EQ(tba.size(), 1u);  // only the original ordering
  EXPECT_EQ(cba.size(), 2u);
  EXPECT_EQ(eca.size(), 2u);
}

// An antijoin pair: Q = R0 laj[p01] (R1 laj[p12] R2). assoc(laj, laj) is
// invalid and CBA cannot reorder antijoins; ECA reaches both orderings
// (Rule 15 of Table 3, the paper's query Q1 pattern).
TEST(ReorderabilityExamples, AntijoinPairOnlyECAReorders) {
  Rng rng(777);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 3, dopts);
  PlanPtr query = Plan::Join(
      JoinOp::kLeftAnti, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kLeftAnti, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  CostModel cost = CostModel::FromDatabase(db);
  std::set<std::string> tba = RealizableOrderings(*query, SwapPolicy::kTBA);
  std::set<std::string> cba = RealizableOrderings(*query, SwapPolicy::kCBA);
  std::set<std::string> eca = RealizableOrderings(*query, SwapPolicy::kECA);
  EXPECT_EQ(tba.size(), 1u);
  EXPECT_EQ(cba.size(), 1u);
  EXPECT_EQ(eca.size(), 2u);

  // And the reordered plan is still correct.
  EnumeratorOptions opts;
  opts.reuse_subplans = false;
  TopDownEnumerator e(&cost, opts);
  auto result = e.Optimize(*query);
  ExpectPlansEquivalent(*query, *result.plan, db);
}

// TBA and CBA are incomparable (Section 1): a valid antijoin assoc step is
// TBA-only, while an invalid outerjoin assoc step is CBA-only.
TEST(ReorderabilityExamples, TBAandCBAIncomparable) {
  Rng rng(31);
  RandomDataOptions dopts;
  Database db = RandomDatabase(rng, 3, dopts);
  CostModel cost = CostModel::FromDatabase(db);

  // (a) R0 join[p01] (R1 laj[p12] R2): assoc(join, laj) is valid -> TBA
  // reorders; CBA cannot touch the antijoin.
  PlanPtr qa = Plan::Join(
      JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kLeftAnti, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  (void)cost;
  EXPECT_EQ(RealizableOrderings(*qa, SwapPolicy::kTBA).size(), 2u);
  EXPECT_EQ(RealizableOrderings(*qa, SwapPolicy::kCBA).size(), 1u);

  // (b) R0 loj[p01] (R1 join[p12] R2): invalid assoc -> CBA-only.
  PlanPtr qb = Plan::Join(
      JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  EXPECT_EQ(RealizableOrderings(*qb, SwapPolicy::kTBA).size(), 1u);
  EXPECT_EQ(RealizableOrderings(*qb, SwapPolicy::kCBA).size(), 2u);
}

// --------------------------------------------------------------------------
// Support machinery
// --------------------------------------------------------------------------

TEST(JoinOrderTest, ChainQueryCounts) {
  // Chain R0-R1-R2: orderings = ((01)2), (0(12)) = 2; the cartesian
  // ordering ((02)1) is excluded (no predicate would connect the split).
  std::vector<RelSet> preds = {RelSet::FirstN(2),
                               RelSet::Single(1).Union(RelSet::Single(2))};
  EXPECT_EQ(CountJoinOrderings(RelSet::FirstN(3), preds), 2);

  // Chain of 4: 0-1-2-3 has Catalan-ish count = 5? Orderings of a chain of
  // n relations = (number of ways) — for n=4 it is 5... each contiguous
  // bracketing; chain allows only contiguous splits: count = Catalan(3) = 5.
  std::vector<RelSet> chain4 = {
      RelSet::FirstN(2), RelSet::Single(1).Union(RelSet::Single(2)),
      RelSet::Single(2).Union(RelSet::Single(3))};
  EXPECT_EQ(CountJoinOrderings(RelSet::FirstN(4), chain4), 5);
}

TEST(JoinOrderTest, StarQueryCounts) {
  // Star centered at R0 with 3 satellites: any permutation of attaching
  // satellites: orderings = 3! = 6? Each tree: R0 joined with satellites in
  // some nesting: ((0 s1) s2) s3 and (0 s) groupings... every binary tree
  // where each split separates satellites; count for star-3 = 6? Verified
  // value from enumeration: 6? Let the code answer and pin it.
  std::vector<RelSet> star = {
      RelSet::FirstN(2),                              // 0-1
      RelSet::Single(0).Union(RelSet::Single(2)),     // 0-2
      RelSet::Single(0).Union(RelSet::Single(3))};    // 0-3
  // For a star query with k satellites the orderings are the sequences in
  // which satellites join the center: k! = 6.
  EXPECT_EQ(CountJoinOrderings(RelSet::FirstN(4), star), 6);
}

TEST(SubtreeTest, JoinablePairsMatchPaperExample) {
  // P = (R0 x[p03] (R1 x[p12] R2)) shaped plan from Figure 4's discussion:
  // with S = all, the pair ({R0},{R1,R2}) is joinable via p03 only if p03
  // is the unique join referring to both sides.
  PlanPtr p = Plan::Join(
      JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  auto pairs = JoinablePairs(p.get(), RelSet::FirstN(3));
  // Valid: ({R0},{R1,R2}) via p01 and ({R0,R1},{R2}) via p12; the split
  // ({R0,R2},{R1}) has two joins referring to both sides -> rejected.
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(SubtreeTest, SubtreeIncludesCompChain) {
  PlanPtr join = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"),
                            Plan::Leaf(0), Plan::Leaf(1));
  PlanPtr wrapped = Plan::Comp(
      CompOp::Beta(), Plan::Comp(CompOp::Project(RelSet::FirstN(2)),
                                 std::move(join)));
  PlanPtr root = Plan::Join(JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
                            std::move(wrapped), Plan::Leaf(2));
  Plan* sub = SubtreeOf(root.get(), RelSet::FirstN(2));
  ASSERT_TRUE(sub->is_comp());
  EXPECT_EQ(sub->comp().kind, CompOp::Kind::kBeta);
  // Whole-set subtree is the root itself.
  EXPECT_EQ(SubtreeOf(root.get(), RelSet::FirstN(3)), root.get());
}

TEST(SubtreeTest, OrderingKeyCanonical) {
  PlanPtr a = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"),
                         Plan::Leaf(0), Plan::Leaf(1));
  PlanPtr b = Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                         Plan::Leaf(1), Plan::Leaf(0));
  EXPECT_EQ(OrderingKey(*a), OrderingKey(*b));  // unordered, op-insensitive
  EXPECT_EQ(OrderingKey(*a), "(R0,R1)");
}

}  // namespace
}  // namespace eca
