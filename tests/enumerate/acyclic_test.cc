// GYO ear-removal and semijoin-tree eligibility (enumerate/acyclic.h):
// the acyclicity test over conjunct-level hyperedges, and the join-tree
// construction the Yannakakis policy plans from.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eca/optimizer.h"
#include "enumerate/acyclic.h"
#include "enumerate/semijoin.h"
#include "sqlgen/workload.h"

#include "../test_util.h"

namespace eca {
namespace {

RelSet Edge(std::initializer_list<int> rels) {
  RelSet s;
  for (int r : rels) s = s.With(r);
  return s;
}

RelSet Universe(int n) {
  RelSet s;
  for (int i = 0; i < n; ++i) s = s.With(i);
  return s;
}

int CountSemijoins(const Plan& node) {
  int n = node.is_join() && IsSemi(node.op()) ? 1 : 0;
  if (node.left() != nullptr) n += CountSemijoins(*node.left());
  if (node.right() != nullptr) n += CountSemijoins(*node.right());
  return n;
}

TEST(GyoTest, ChainIsAcyclic) {
  EXPECT_TRUE(GyoAcyclic(Universe(4),
                         {Edge({0, 1}), Edge({1, 2}), Edge({2, 3})}));
}

TEST(GyoTest, StarIsAcyclic) {
  EXPECT_TRUE(GyoAcyclic(Universe(5), {Edge({0, 1}), Edge({0, 2}),
                                       Edge({0, 3}), Edge({0, 4})}));
}

TEST(GyoTest, TriangleIsCyclic) {
  EXPECT_FALSE(
      GyoAcyclic(Universe(3), {Edge({0, 1}), Edge({1, 2}), Edge({0, 2})}));
}

TEST(GyoTest, LongerCycleIsCyclic) {
  EXPECT_FALSE(GyoAcyclic(Universe(4), {Edge({0, 1}), Edge({1, 2}),
                                        Edge({2, 3}), Edge({0, 3})}));
}

// A triangle with a pendant relation hanging off it: the ear is removed
// but the cycle remains, so the reduction must still reject it.
TEST(GyoTest, CycleWithPendantEarIsCyclic) {
  EXPECT_FALSE(GyoAcyclic(Universe(4), {Edge({0, 1}), Edge({1, 2}),
                                        Edge({0, 2}), Edge({2, 3})}));
}

// Covering hyperedges make a "cycle" acyclic: the triangle's three binary
// edges are each subsumed by one ternary edge (the classic alpha- vs
// gamma-acyclicity distinction GYO settles).
TEST(GyoTest, TriangleCoveredByTernaryEdgeIsAlphaAcyclic) {
  EXPECT_TRUE(GyoAcyclic(Universe(3), {Edge({0, 1}), Edge({1, 2}),
                                       Edge({0, 2}), Edge({0, 1, 2})}));
}

// A self-join conjunct (R0.a = R0.b) contributes a single-vertex edge —
// a trivial ear that must not block reduction of the rest.
TEST(GyoTest, SelfJoinEdgeIsRemovedAsEar) {
  EXPECT_TRUE(
      GyoAcyclic(Universe(3), {Edge({0}), Edge({0, 1}), Edge({1, 2})}));
}

// GYO itself accepts disconnected graphs (each component reduces on its
// own); the semijoin policy layers a separate connectivity requirement.
TEST(GyoTest, DisconnectedComponentsAreEachReduced) {
  EXPECT_TRUE(GyoAcyclic(Universe(4), {Edge({0, 1}), Edge({2, 3})}));
  EXPECT_FALSE(GyoAcyclic(
      Universe(5),
      {Edge({0, 1}), Edge({2, 3}), Edge({3, 4}), Edge({2, 4})}));
}

TEST(GyoTest, SingleRelationAndNoEdgesAreTriviallyAcyclic) {
  EXPECT_TRUE(GyoAcyclic(Universe(1), {}));
  EXPECT_TRUE(GyoAcyclic(Universe(3), {}));
}

TEST(GyoTest, DuplicateEdgesAreSubsumed) {
  EXPECT_TRUE(GyoAcyclic(Universe(2), {Edge({0, 1}), Edge({0, 1})}));
}

// ConjunctRefSets splits AND trees: the clique workload's stacked AND
// predicates must contribute one hyperedge per pairwise comparison, or
// the cycles would be invisible to GYO.
TEST(ConjunctRefSetsTest, SplitsCliqueAndTreesIntoPairwiseEdges) {
  WorkloadOptions wopts;
  wopts.topology = Topology::kClique;
  wopts.num_rels = 5;
  Workload w = GenerateWorkload(wopts);
  std::vector<RelSet> edges = ConjunctRefSets(*w.query);
  EXPECT_EQ(edges.size(), 10u);  // C(5,2) pairwise conjuncts
  for (const RelSet& e : edges) EXPECT_EQ(e.Count(), 2);
  EXPECT_FALSE(GyoAcyclic(Universe(5), edges));
}

TEST(ConjunctRefSetsTest, ChainContributesOneEdgePerJoin) {
  WorkloadOptions wopts;
  wopts.topology = Topology::kChain;
  wopts.num_rels = 6;
  Workload w = GenerateWorkload(wopts);
  std::vector<RelSet> edges = ConjunctRefSets(*w.query);
  EXPECT_EQ(edges.size(), 5u);
  EXPECT_TRUE(GyoAcyclic(Universe(6), edges));
}

std::vector<int64_t> RowsOf(const Database& db, int n) {
  std::vector<int64_t> rows(n);
  for (int i = 0; i < n; ++i) {
    rows[i] = db.table(i).NumRows();
  }
  return rows;
}

TEST(SemijoinTreeTest, ChainBuildsTreeRootedAtLargestTable) {
  WorkloadOptions wopts;
  wopts.topology = Topology::kChain;
  wopts.num_rels = 6;
  wopts.seed = 11;
  Workload w = GenerateWorkload(wopts);
  std::vector<int64_t> rows = RowsOf(w.db, 6);
  SemijoinTree tree;
  std::string why;
  ASSERT_TRUE(BuildSemijoinTree(*w.query, rows, &tree, &why)) << why;
  EXPECT_EQ(tree.rels.Count(), 6);
  EXPECT_EQ(tree.edges.size(), 5u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_LE(rows[i], rows[tree.root]) << "root must be a largest table";
  }
  // BFS invariant: every edge's parent is the root or some earlier child.
  RelSet seen = RelSet::Single(tree.root);
  for (const SemijoinTree::Edge& e : tree.edges) {
    EXPECT_TRUE(seen.Contains(e.parent));
    EXPECT_FALSE(seen.Contains(e.child));
    ASSERT_NE(e.pred, nullptr);
    seen = seen.With(e.child);
  }
  EXPECT_EQ(seen, tree.rels);
}

TEST(SemijoinTreeTest, CliqueIsRejectedAsCyclic) {
  WorkloadOptions wopts;
  wopts.topology = Topology::kClique;
  wopts.num_rels = 4;
  Workload w = GenerateWorkload(wopts);
  SemijoinTree tree;
  std::string why;
  EXPECT_FALSE(BuildSemijoinTree(*w.query, RowsOf(w.db, 4), &tree, &why));
  EXPECT_NE(why.find("cyclic"), std::string::npos) << why;
}

TEST(SemijoinTreeTest, SingleRelationIsRejected) {
  WorkloadOptions wopts;
  wopts.num_rels = 2;
  Workload w = GenerateWorkload(wopts);
  SemijoinTree tree;
  std::string why;
  EXPECT_FALSE(
      BuildSemijoinTree(*Plan::Leaf(0), RowsOf(w.db, 2), &tree, &why));
}

TEST(SemijoinTreeTest, OuterJoinIsRejected) {
  WorkloadOptions wopts;
  wopts.num_rels = 3;
  Workload w = GenerateWorkload(wopts);
  // Rebuild the chain with one join flipped to a left outer join.
  PredRef p01 = Eq(Col(0, "a"), Col(1, "a"));
  PredRef p12 = Eq(Col(1, "a"), Col(2, "a"));
  PlanPtr q = Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0),
                         Plan::Leaf(1));
  q = Plan::Join(JoinOp::kInner, p12, std::move(q), Plan::Leaf(2));
  SemijoinTree tree;
  std::string why;
  EXPECT_FALSE(BuildSemijoinTree(*q, RowsOf(w.db, 3), &tree, &why));
}

TEST(SemijoinTreeTest, CrossProductAndDisconnectedGraphAreRejected) {
  WorkloadOptions wopts;
  wopts.num_rels = 4;
  Workload w = GenerateWorkload(wopts);
  std::vector<int64_t> rows = RowsOf(w.db, 4);
  PredRef p01 = Eq(Col(0, "a"), Col(1, "a"));
  PredRef p23 = Eq(Col(2, "a"), Col(3, "a"));

  // R0-R1 and R2-R3 combined by a predicate-free cross product.
  PlanPtr q = Plan::Join(
      JoinOp::kCross, nullptr,
      Plan::Join(JoinOp::kInner, p01, Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Join(JoinOp::kInner, p23, Plan::Leaf(2), Plan::Leaf(3)));
  SemijoinTree tree;
  std::string why;
  EXPECT_FALSE(BuildSemijoinTree(*q, rows, &tree, &why));

  // All inner, every conjunct binary — but the top predicate re-joins
  // R0-R1, so {R0,R1} and {R2,R3} stay disconnected components.
  PredRef p01b = Eq(Col(0, "b"), Col(1, "b"));
  q = Plan::Join(
      JoinOp::kInner, p01b,
      Plan::Join(JoinOp::kInner, p01, Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Join(JoinOp::kInner, p23, Plan::Leaf(2), Plan::Leaf(3)));
  EXPECT_FALSE(BuildSemijoinTree(*q, rows, &tree, &why));
  EXPECT_NE(why.find("connect"), std::string::npos) << why;
}

// A conjunct referencing a single relation (a self-join-shaped filter)
// makes the query ineligible: the tree's edges need two endpoints.
TEST(SemijoinTreeTest, SingleRelationConjunctIsRejected) {
  WorkloadOptions wopts;
  wopts.num_rels = 2;
  Workload w = GenerateWorkload(wopts);
  PredRef self = Eq(Col(0, "a"), Col(0, "b"));
  PlanPtr q =
      Plan::Join(JoinOp::kInner, self, Plan::Leaf(0), Plan::Leaf(1));
  SemijoinTree tree;
  std::string why;
  EXPECT_FALSE(BuildSemijoinTree(*q, RowsOf(w.db, 2), &tree, &why));
}

// End to end through the facade: a cyclic query under the semijoin policy
// falls back to DP (provenance note says so) and still matches the
// unoptimized query's result.
TEST(SemijoinPolicyTest, CyclicQueryFallsBackToDp) {
  WorkloadOptions wopts;
  wopts.topology = Topology::kClique;
  wopts.num_rels = 4;
  wopts.seed = 5;
  Workload w = GenerateWorkload(wopts);
  Optimizer::Options opts;
  opts.plan_policy = PlanPolicy::kSemijoin;
  Optimizer opt(opts);
  auto best = opt.Optimize(*w.query, w.db);
  ASSERT_NE(best.plan, nullptr);
  EXPECT_FALSE(best.stats.degraded);
  EXPECT_EQ(best.provenance.policy, "semijoin");
  EXPECT_EQ(best.provenance.policy_note.rfind("ineligible", 0), 0u)
      << best.provenance.policy_note;
  Relation direct = opt.Execute(*w.query, w.db);
  Relation got = opt.Execute(*best.plan, w.db);
  ExpectSameRelation(direct, got, "cyclic semijoin fallback");
}

// The acyclic counterpart: the Yannakakis plan is built (semijoins
// present), flagged in the provenance, and result-identical.
TEST(SemijoinPolicyTest, AcyclicQueryGetsYannakakisPlan) {
  for (Topology topo : {Topology::kChain, Topology::kStar}) {
    WorkloadOptions wopts;
    wopts.topology = topo;
    wopts.num_rels = 5;
    wopts.seed = 9;
    Workload w = GenerateWorkload(wopts);
    Optimizer::Options opts;
    opts.plan_policy = PlanPolicy::kSemijoin;
    Optimizer opt(opts);
    auto best = opt.Optimize(*w.query, w.db);
    ASSERT_NE(best.plan, nullptr);
    EXPECT_FALSE(best.stats.degraded);
    EXPECT_EQ(best.provenance.policy_note.rfind("yannakakis", 0), 0u)
        << best.provenance.policy_note;
    // Red(v) nests its children's reducers, so each non-root relation
    // contributes at least one semijoin (deep chains contribute more).
    EXPECT_GE(CountSemijoins(*best.plan), 4) << TopologyName(topo);
    Relation direct = opt.Execute(*w.query, w.db);
    Relation got = opt.Execute(*best.plan, w.db);
    ExpectSameRelation(direct, got,
                       std::string("yannakakis ") + TopologyName(topo));
  }
}

}  // namespace
}  // namespace eca
