// Regression tests for d-edge-guarded subplan reuse (Section 5.2 /
// Example 5.1 / Theorem 5.4). The guard must make reuse always sound; the
// specific query below is a found counterexample where naive reuse (keyed
// on the relation set alone) grafts a subplan whose Equation 9
// compensations were pulled outside its boundary into a context that kept
// them inside, producing a wrong plan.

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "exec/executor.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

// The counterexample query (found by bench_ablation_dedges, seed 1):
//   Q = raj[p3](R2, roj[p2](join[p0](R3, R4), laj[p1](R1, R0)))
// i.e. ((R1 laj R0) loj (R3 join R4)) raj-normalized with R2 pruning.
PlanPtr CounterexampleQuery() {
  return Plan::Join(
      JoinOp::kRightAnti, EquiJoin(2, "a", 1, "a", "p3"), Plan::Leaf(2),
      Plan::Join(JoinOp::kRightOuter, EquiJoin(3, "a", 1, "b", "p2"),
                 Plan::Join(JoinOp::kInner, EquiJoin(3, "b", 4, "b", "p0"),
                            Plan::Leaf(3), Plan::Leaf(4)),
                 Plan::Join(JoinOp::kLeftAnti,
                            EquiJoin(1, "a", 0, "a", "p1"), Plan::Leaf(1),
                            Plan::Leaf(0))));
}

TEST(DEdgeReuseTest, GuardedReuseSoundOnCounterexampleShape) {
  // The exact data of the original failure comes from the generator; the
  // shape matters more than the values, so test several seeds.
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 31 + 17);
    RandomDataOptions dopts;
    Database db = RandomDatabase(rng, 5, dopts);
    PlanPtr query = CounterexampleQuery();
    CostModel cost = CostModel::FromDatabase(db);
    EnumeratorOptions opts;  // guarded reuse on
    TopDownEnumerator e(&cost, opts);
    auto result = e.Optimize(*query);
    ASSERT_NE(result.plan, nullptr);
    ExpectPlansEquivalent(*query, *result.plan, db,
                          "guarded reuse on the Example 5.1 shape");
  }
}

TEST(DEdgeReuseTest, GuardedReuseSoundAcrossRandomSweep) {
  for (int seed = 0; seed < 60; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 31 + 17);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 4 + seed % 2;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    CostModel cost = CostModel::FromDatabase(db);
    EnumeratorOptions opts;
    TopDownEnumerator e(&cost, opts);
    auto result = e.Optimize(*query);
    ASSERT_NE(result.plan, nullptr);
    ExpectPlansEquivalent(*query, *result.plan, db,
                          "guarded reuse sweep seed " +
                              std::to_string(seed));
  }
}

TEST(DEdgeReuseTest, NaiveReuseIsDemonstrablyUnsound) {
  // The ablation switch must reproduce at least one wrong plan over the
  // sweep — showing the d-edge guard is load-bearing (Example 5.1).
  int broken = 0;
  for (int seed = 0; seed < 60 && broken == 0; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 31 + 17);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 4 + seed % 2;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    CostModel cost = CostModel::FromDatabase(db);
    EnumeratorOptions opts;
    opts.unsafe_ignore_dedges = true;
    TopDownEnumerator e(&cost, opts);
    auto result = e.Optimize(*query);
    if (result.plan == nullptr) continue;
    if (!PlansEquivalentOn(*query, *result.plan, db)) ++broken;
  }
  EXPECT_GE(broken, 1)
      << "naive reuse unexpectedly survived the sweep; the ablation no "
         "longer demonstrates Example 5.1";
}

}  // namespace
}  // namespace eca
