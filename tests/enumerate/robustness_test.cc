// Robustness tests: complex (multi-relation) predicates, failure
// atomicity of the swap machinery, deep-query completeness stress, and the
// exact Figure 5 plan shapes.

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "enumerate/join_order.h"
#include "enumerate/realize.h"
#include "exec/executor.h"
#include "rewrite/rules.h"
#include "testing/random_data.h"
#include "testing/random_query.h"
#include "tpch/paper_queries.h"

#include "../test_util.h"

namespace eca {
namespace {

// --------------------------------------------------------------------------
// Complex predicates (the [1]-style extension the paper mentions): a join
// predicate referencing three relations. The swap dispatch and joinable-
// pair logic work on reference sets, so these are handled uniformly.
// --------------------------------------------------------------------------

TEST(ComplexPredicateTest, ThreeRelationPredicateStaysSound) {
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 37 + 11);
    RandomDataOptions dopts;
    Database db = RandomDatabase(rng, 4, dopts);
    // p02 references R0, R1 and R2: valid only where all three are visible.
    PredRef complex_pred = Predicate::WithLabel(
        Predicate::And({Eq(Col(0, "a"), Col(2, "a")),
                        Gt(Col(1, "b"), Col(2, "b"))}),
        "p012");
    PlanPtr query = Plan::Join(
        JoinOp::kLeftOuter, EquiJoin(0, "b", 3, "b", "p03"),
        Plan::Join(JoinOp::kInner, complex_pred,
                   Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"),
                              Plan::Leaf(0), Plan::Leaf(1)),
                   Plan::Leaf(2)),
        Plan::Leaf(3));
    CostModel cost = CostModel::FromDatabase(db);
    EnumeratorOptions opts;
    TopDownEnumerator e(&cost, opts);
    auto result = e.Optimize(*query);
    ASSERT_NE(result.plan, nullptr);
    ExpectPlansEquivalent(*query, *result.plan, db,
                          "complex-predicate optimization");
    // Every realizable ordering stays correct too.
    for (const OrderingNodePtr& theta : AllJoinOrderingTrees(
             query->leaves(), PredicateRefSets(*query))) {
      PlanPtr plan = RealizeOrdering(*query, *theta, SwapPolicy::kECA);
      if (plan == nullptr) continue;
      ExpectPlansEquivalent(*query, *plan, db,
                            "complex-pred ordering " + theta->Key());
    }
  }
}

// --------------------------------------------------------------------------
// Failure atomicity: a SwapUp that gives up must leave the plan
// semantically intact (the tree may have been canonicalized by sound
// equivalences, but never corrupted).
// --------------------------------------------------------------------------

TEST(FailureAtomicityTest, FailedSwapLeavesEquivalentPlan) {
  int failures_exercised = 0;
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 97 + 41);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 4;
    qopts.allow_full_outer = true;  // full outerjoins make swaps fail
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    PlanPtr work = query->Clone();
    RewriteContext ctx;
    std::vector<Plan*> joins;
    CollectJoins(work.get(), &joins);
    for (Plan* j : joins) {
      if (j == work.get()) continue;
      Plan* risen = SwapUp(work, j, &ctx);
      if (risen == nullptr) ++failures_exercised;
      ExpectPlansEquivalent(*query, *work, db,
                            "plan after (possibly failed) swap");
      break;  // one swap attempt per query keeps node pointers valid
    }
  }
  EXPECT_GT(failures_exercised, 0) << "no swap failure was exercised";
}

// --------------------------------------------------------------------------
// Deep-query completeness stress (Theorem 3.2a at 6 relations).
// --------------------------------------------------------------------------

TEST(DeepCompleteness, SixRelationQueriesFullyReorderable) {
  for (int seed = 0; seed < 3; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 1009 + 77);
    RandomDataOptions dopts;
    dopts.max_rows = 4;
    RandomQueryOptions qopts;
    qopts.num_rels = 6;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    auto thetas =
        AllJoinOrderingTrees(query->leaves(), PredicateRefSets(*query));
    ASSERT_GT(thetas.size(), 0u);
    int checked = 0;
    for (const OrderingNodePtr& theta : thetas) {
      PlanPtr plan = RealizeOrdering(*query, *theta, SwapPolicy::kECA);
      ASSERT_NE(plan, nullptr)
          << "unreachable ordering " << theta->Key() << " of\n"
          << query->ToString();
      // Execute a sample of the orderings (all of them would be slow).
      if (checked++ % 7 == 0) {
        ExpectPlansEquivalent(*query, *plan, db, theta->Key());
      }
    }
  }
}

// --------------------------------------------------------------------------
// Figure 5 golden shapes
// --------------------------------------------------------------------------

TEST(Figure5Shapes, Q1EcaPlanIsTheRule15Form) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, 5.0);
  PlanPtr eca;
  for (const OrderingNodePtr& theta : AllJoinOrderingTrees(
           q.plan->leaves(), PredicateRefSets(*q.plan))) {
    if (theta->Key() == "((R0,R1),R2)") {
      eca = RealizeOrdering(*q.plan, *theta, SwapPolicy::kECA);
    }
  }
  ASSERT_NE(eca, nullptr);
  EXPECT_EQ(eca->ToInlineString(),
            "pi{R0}(gamma{R1}(pi{R0,R1}(gamma*[{R2} keep {R0}]("
            "((R0 loj[p12] R1) loj[p23] R2)))))");
}

}  // namespace
}  // namespace eca
