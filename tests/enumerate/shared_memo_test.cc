// SharedMemo unit and concurrency tests (enumerate/shared_memo.h): the
// published-entry lifecycle the cross-query plan cache depends on —
// full-key verification under forced map-key collisions, the
// (generation, leader) visibility rule, epoch invalidation, LRU
// eviction, and MemoryTracker balance. The multi-thread stresses run
// under the TSan CI lane; every one has a deterministic final state
// (the cheapest published cost wins a probe regardless of publish
// interleaving).

#include "enumerate/shared_memo.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "gtest/gtest.h"
#include "rewrite/rules.h"

namespace eca {
namespace {

MemoExtKey ExtKey(const std::string& src, const std::string& a,
                  const std::string& b) {
  MemoExtKey key;
  key.src = src;
  key.a = a;
  key.b = b;
  key.src_hash = PredNameInterner::NameHash(src);
  key.a_hash = PredNameInterner::NameHash(a);
  key.b_hash = PredNameInterner::NameHash(b);
  return key;
}

std::shared_ptr<const MemoPayload> MakePayload(
    RelSet s, double cost, uint64_t epoch = 0, int64_t bytes = 64,
    std::vector<MemoExtKey> ext_keys = {}) {
  auto payload = std::make_shared<MemoPayload>();
  payload->query_fp = 0x1234;
  payload->s = s;
  payload->policy = 0;
  payload->epoch = epoch;
  payload->ext_keys = std::move(ext_keys);
  payload->subtree = Plan::Leaf(0);
  payload->cost = cost;
  payload->bytes = bytes;
  return payload;
}

MemoProbe ProbeFor(const MemoPayload& payload, uint64_t map_key) {
  MemoProbe probe;
  probe.map_key = map_key;
  probe.query_fp = payload.query_fp;
  probe.s = payload.s;
  probe.policy = payload.policy;
  probe.epoch = payload.epoch;
  probe.ext_keys = &payload.ext_keys;
  return probe;
}

TEST(SharedMemoTest, PublishFindRoundTrip) {
  SharedMemo memo;
  memo.Pin();
  auto payload = MakePayload(RelSet::Single(1), 10.0);
  EXPECT_EQ(memo.Publish(7, payload, /*gen=*/1, /*leader=*/false),
            MemoPublishResult::kStoredNew);
  MemoProbeStats stats;
  // Visible to a later generation...
  const MemoPayload* hit = memo.Find(ProbeFor(*payload, 7), /*gen=*/2, &stats);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, 10.0);
  EXPECT_EQ(stats.probes, 1);
  EXPECT_EQ(stats.hits, 1);
  // ...and a different map key misses.
  EXPECT_EQ(memo.Find(ProbeFor(*payload, 8), /*gen=*/2, &stats), nullptr);
  memo.Unpin();
}

TEST(SharedMemoTest, VisibilityRuleGenAndLeader) {
  SharedMemo memo;
  memo.Pin();
  auto follower = MakePayload(RelSet::Single(1), 10.0);
  auto leader = MakePayload(RelSet::Single(2), 20.0);
  memo.Publish(1, follower, /*gen=*/2, /*leader=*/false);
  memo.Publish(2, leader, /*gen=*/2, /*leader=*/true);
  MemoProbeStats stats;
  // Same generation: only the leader's entries are visible — a follower's
  // publishes must never leak to a sibling task mid-query (its own
  // entries live in its task-local map).
  EXPECT_EQ(memo.Find(ProbeFor(*follower, 1), /*gen=*/2, &stats), nullptr);
  EXPECT_NE(memo.Find(ProbeFor(*leader, 2), /*gen=*/2, &stats), nullptr);
  // The next query's generation sees both.
  EXPECT_NE(memo.Find(ProbeFor(*follower, 1), /*gen=*/3, &stats), nullptr);
  EXPECT_NE(memo.Find(ProbeFor(*leader, 2), /*gen=*/3, &stats), nullptr);
  memo.Unpin();
}

TEST(SharedMemoTest, CheapestWinsAndDuplicatesSkip) {
  SharedMemo memo;
  memo.Pin();
  auto expensive = MakePayload(RelSet::Single(1), 10.0);
  auto cheaper = MakePayload(RelSet::Single(1), 5.0);
  EXPECT_EQ(memo.Publish(7, expensive, 1, false),
            MemoPublishResult::kStoredNew);
  // Publishing something no cheaper than the newest same-key entry is a
  // no-op...
  EXPECT_EQ(memo.Publish(7, MakePayload(RelSet::Single(1), 12.0), 1, false),
            MemoPublishResult::kSkippedDuplicate);
  EXPECT_EQ(memo.Publish(7, MakePayload(RelSet::Single(1), 10.0), 1, false),
            MemoPublishResult::kSkippedDuplicate);
  // ...while a strictly cheaper one supersedes it.
  EXPECT_EQ(memo.Publish(7, cheaper, 1, false),
            MemoPublishResult::kStoredImproved);
  MemoProbeStats stats;
  const MemoPayload* hit = memo.Find(ProbeFor(*cheaper, 7), 2, &stats);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, 5.0);
  memo.Unpin();
}

// Forced map-key collision: two entries share the 64-bit map key but
// differ in their external d-edge signature. The stored-full-key check
// must keep them apart — a graft on a hash collision would be the exact
// unsoundness Theorem 5.4's guard exists to prevent — and each rejected
// candidate is counted as a sig collision.
TEST(SharedMemoTest, FullKeyVerificationUnderForcedCollision) {
  SharedMemo memo;
  memo.Pin();
  auto with_a = MakePayload(RelSet::Single(1), 10.0, /*epoch=*/0,
                            /*bytes=*/64, {ExtKey("p0", "x", "y")});
  auto with_b = MakePayload(RelSet::Single(1), 5.0, /*epoch=*/0,
                            /*bytes=*/64, {ExtKey("p1", "x", "z")});
  constexpr uint64_t kSharedMapKey = 42;
  EXPECT_EQ(memo.Publish(kSharedMapKey, with_a, 1, false),
            MemoPublishResult::kStoredNew);
  EXPECT_EQ(memo.Publish(kSharedMapKey, with_b, 1, false),
            MemoPublishResult::kStoredNew);

  MemoProbeStats stats;
  const MemoPayload* hit =
      memo.Find(ProbeFor(*with_a, kSharedMapKey), 2, &stats);
  ASSERT_NE(hit, nullptr);
  // The cheaper colliding entry must NOT shadow the exact-key match.
  EXPECT_EQ(hit->cost, 10.0);
  EXPECT_EQ(hit->ext_keys, with_a->ext_keys);
  EXPECT_EQ(stats.sig_collisions, 1);

  hit = memo.Find(ProbeFor(*with_b, kSharedMapKey), 2, &stats);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, 5.0);
  memo.Unpin();
}

TEST(SharedMemoTest, EpochAdvanceInvalidatesAndSweepReclaims) {
  MemoryTracker root(0, 0);
  SharedMemo::Config config;
  config.parent = &root;
  SharedMemo memo(config);
  memo.Pin();
  auto payload = MakePayload(RelSet::Single(1), 10.0, memo.epoch(),
                             /*bytes=*/128);
  ASSERT_EQ(memo.Publish(7, payload, 1, false),
            MemoPublishResult::kStoredNew);
  EXPECT_EQ(memo.used_bytes(), 128);
  EXPECT_EQ(root.used(), 128);

  memo.AdvanceEpoch();
  // The entry's full key pins the old epoch, so a current-epoch probe
  // can never reuse a stale-stats plan.
  MemoProbe probe = ProbeFor(*payload, 7);
  probe.epoch = memo.epoch();
  MemoProbeStats stats;
  EXPECT_EQ(memo.Find(probe, 2, &stats), nullptr);
  memo.Unpin();

  // Sweep reclaims the unreachable entry and rebalances the tracker.
  memo.Sweep();
  EXPECT_EQ(memo.used_bytes(), 0);
  EXPECT_EQ(memo.entry_count(), 0);
  EXPECT_EQ(root.used(), 0);
}

TEST(SharedMemoTest, ByteBudgetRejectsAndClearRebalances) {
  MemoryTracker root(0, 0);
  SharedMemo::Config config;
  config.max_bytes = 150;
  config.parent = &root;
  SharedMemo memo(config);
  memo.Pin();
  EXPECT_EQ(memo.Publish(1, MakePayload(RelSet::Single(1), 1.0, 0, 100), 1,
                         false),
            MemoPublishResult::kStoredNew);
  // 100 + 100 > 150: over-budget publishes are rejected, never partial.
  EXPECT_EQ(memo.Publish(2, MakePayload(RelSet::Single(2), 2.0, 0, 100), 1,
                         false),
            MemoPublishResult::kRejectedMemory);
  EXPECT_EQ(memo.used_bytes(), 100);
  EXPECT_EQ(root.used(), 100);
  memo.Unpin();
  memo.Clear();
  EXPECT_EQ(memo.used_bytes(), 0);
  EXPECT_EQ(root.used(), 0);
}

// TrySweep must refuse (not deadlock, not corrupt) while an enumeration
// holds a pin, and run once the pin is dropped.
TEST(SharedMemoTest, TrySweepRespectsPins) {
  SharedMemo memo;
  memo.Pin();
  EXPECT_FALSE(memo.TrySweep());
  memo.Unpin();
  EXPECT_TRUE(memo.TrySweep());
}

// Multi-thread publish/lookup stress with a deterministic winner: 4
// threads race seeded (key, cost) publishes; whatever the interleaving,
// a probe after the barrier must return the cheapest cost published for
// its key — Publish's dedup/improve walk and Find's `<=` newest-to-
// oldest scan both converge on the minimum.
TEST(SharedMemoTest, ConcurrentPublishLookupDeterministicWinner) {
  constexpr int kThreads = 4;
  constexpr int kKeys = 64;
  constexpr int kRounds = 200;
  SharedMemo memo;

  auto cost_of = [](int thread, int round, int key) {
    uint64_t h = Mix64((static_cast<uint64_t>(thread) << 40) ^
                       (static_cast<uint64_t>(round) << 16) ^
                       static_cast<uint64_t>(key));
    return static_cast<double>(1 + h % 1000);
  };
  // The deterministic expectation: the global minimum per key.
  std::vector<double> expected(kKeys, 1e18);
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      int key = static_cast<int>(Mix64(static_cast<uint64_t>(t * kRounds + r)) %
                                 kKeys);
      expected[static_cast<size_t>(key)] = std::min(
          expected[static_cast<size_t>(key)], cost_of(t, r, key));
    }
  }

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      memo.Pin();
      MemoProbeStats stats;
      for (int r = 0; r < kRounds; ++r) {
        int key = static_cast<int>(
            Mix64(static_cast<uint64_t>(t * kRounds + r)) % kKeys);
        auto payload =
            MakePayload(RelSet::Single(key), cost_of(t, r, key));
        memo.Publish(static_cast<uint64_t>(key + 1), payload, /*gen=*/1,
                     /*leader=*/false);
        // Interleaved lookups: any hit is a fully-published entry for
        // this exact key, at most as expensive as what we just offered.
        const MemoPayload* hit =
            memo.Find(ProbeFor(*payload, static_cast<uint64_t>(key + 1)),
                      /*gen=*/2, &stats);
        if (hit != nullptr) {
          EXPECT_TRUE(hit->s == RelSet::Single(key));
          EXPECT_GE(hit->cost, expected[static_cast<size_t>(key)]);
        }
      }
      memo.Unpin();
    });
  }
  for (std::thread& w : workers) w.join();

  memo.Pin();
  MemoProbeStats stats;
  for (int key = 0; key < kKeys; ++key) {
    if (expected[static_cast<size_t>(key)] >= 1e18) continue;
    auto probe_payload = MakePayload(RelSet::Single(key), 0.0);
    const MemoPayload* hit = memo.Find(
        ProbeFor(*probe_payload, static_cast<uint64_t>(key + 1)), 2, &stats);
    ASSERT_NE(hit, nullptr) << "key " << key;
    EXPECT_EQ(hit->cost, expected[static_cast<size_t>(key)]) << "key " << key;
  }
  memo.Unpin();
}

// Racing publishers can overshoot the byte budget (each passes the
// pre-check before any addition lands); the sweep's LRU pass must bring
// usage back under budget and keep the most recently probed entries.
TEST(SharedMemoTest, LruSweepAfterConcurrentOvershoot) {
  constexpr int kThreads = 4;
  MemoryTracker root(0, 0);
  SharedMemo::Config config;
  config.max_bytes = 100;
  config.parent = &root;
  SharedMemo memo(config);

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      memo.Pin();
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      memo.Publish(static_cast<uint64_t>(t + 1),
                   MakePayload(RelSet::Single(t), 1.0 + t, 0, 60),
                   /*gen=*/1, /*leader=*/false);
      memo.Unpin();
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  // Touch the stored entries in index order with rising generations, so
  // the LRU order afterwards is exactly key 0 oldest .. key 3 newest.
  memo.Pin();
  MemoProbeStats stats;
  std::vector<int> stored;
  for (int t = 0; t < kThreads; ++t) {
    auto probe_payload = MakePayload(RelSet::Single(t), 0.0);
    if (memo.Find(ProbeFor(*probe_payload, static_cast<uint64_t>(t + 1)),
                  /*gen=*/static_cast<uint64_t>(10 + t), &stats) != nullptr) {
      stored.push_back(t);
    }
  }
  memo.Unpin();
  ASSERT_FALSE(stored.empty());
  EXPECT_EQ(memo.used_bytes(), static_cast<int64_t>(stored.size()) * 60);

  memo.Sweep();
  // Budget restored, tracker balanced with it...
  EXPECT_LE(memo.used_bytes(), memo.max_bytes());
  EXPECT_EQ(root.used(), memo.used_bytes());
  // ...and the survivor is the most recently used entry (only one 60-byte
  // entry fits a 100-byte budget once eviction runs; without overshoot
  // the single stored entry was already under budget).
  memo.Pin();
  int survivors = 0;
  for (int t = 0; t < kThreads; ++t) {
    auto probe_payload = MakePayload(RelSet::Single(t), 0.0);
    if (memo.Find(ProbeFor(*probe_payload, static_cast<uint64_t>(t + 1)),
                  /*gen=*/20, &stats) != nullptr) {
      ++survivors;
      EXPECT_EQ(t, stored.back()) << "LRU evicted the wrong entry";
    }
  }
  memo.Unpin();
  EXPECT_EQ(survivors, 1);
  EXPECT_EQ(memo.entry_count(), 1);
}

// --- Persistence hooks: ExportEntries / Import (cache_store.h) ---------

TEST(SharedMemoExportTest, ExportRespectsMinGenAndEpoch) {
  SharedMemo memo;
  memo.Pin();
  memo.Publish(1, MakePayload(RelSet::Single(1), 10.0), /*gen=*/1, false);
  memo.Publish(2, MakePayload(RelSet::Single(2), 20.0), /*gen=*/2, false);
  memo.Publish(3, MakePayload(RelSet::Single(3), 30.0), /*gen=*/3, false);
  memo.Unpin();

  EXPECT_EQ(memo.ExportEntries(0).size(), 3u);
  EXPECT_EQ(memo.ExportEntries(2).size(), 2u);  // min_gen is inclusive
  std::vector<MemoExportEntry> newest = memo.ExportEntries(3);
  ASSERT_EQ(newest.size(), 1u);
  EXPECT_EQ(newest[0].map_key, 3u);
  EXPECT_EQ(newest[0].gen, 3u);
  EXPECT_EQ(memo.ExportEntries(4).size(), 0u);

  // Entries cost under an old stats epoch never leave the process: after
  // AdvanceEpoch the whole export is empty even at min_gen 0.
  memo.AdvanceEpoch();
  EXPECT_EQ(memo.ExportEntries(0).size(), 0u);
}

TEST(SharedMemoExportTest, ExportIsDeterministicallyOrdered) {
  SharedMemo memo;
  memo.Pin();
  // Publish out of key order, with an improvement chain on key 5.
  memo.Publish(9, MakePayload(RelSet::Single(1), 10.0), 1, false);
  memo.Publish(5, MakePayload(RelSet::Single(2), 20.0), 1, false);
  memo.Publish(5, MakePayload(RelSet::Single(2), 15.0), 2, false);
  memo.Publish(7, MakePayload(RelSet::Single(3), 30.0), 2, false);
  memo.Unpin();

  std::vector<MemoExportEntry> a = memo.ExportEntries(0);
  std::vector<MemoExportEntry> b = memo.ExportEntries(0);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].map_key, b[i].map_key) << i;
    EXPECT_EQ(a[i].payload.get(), b[i].payload.get()) << i;
  }
  // Sorted by map key; within key 5, oldest (original) before improved.
  EXPECT_EQ(a[0].map_key, 5u);
  EXPECT_EQ(a[1].map_key, 5u);
  EXPECT_EQ(a[0].payload->cost, 20.0);
  EXPECT_EQ(a[1].payload->cost, 15.0);
  EXPECT_EQ(a[2].map_key, 7u);
  EXPECT_EQ(a[3].map_key, 9u);
}

TEST(SharedMemoExportTest, ImportIsVisibleToAllQueriesAndDedups) {
  SharedMemo memo;
  auto payload = MakePayload(RelSet::Single(1), 10.0);
  EXPECT_EQ(memo.Import(7, payload), MemoPublishResult::kStoredNew);
  // Visible from the very first BeginQuery generation (gen-0 rule).
  uint64_t gen = memo.BeginQuery();
  EXPECT_GE(gen, 1u);
  memo.Pin();
  MemoProbeStats stats;
  EXPECT_NE(memo.Find(ProbeFor(*payload, 7), gen, &stats), nullptr);
  memo.Unpin();

  // Re-importing the same entry (snapshot + log overlap after a crash
  // between rename and log cleanup) dedups instead of accreting.
  EXPECT_EQ(memo.Import(7, MakePayload(RelSet::Single(1), 10.0)),
            MemoPublishResult::kSkippedDuplicate);
  EXPECT_EQ(memo.entry_count(), 1);
  // A strictly cheaper import supersedes, like a live publish.
  EXPECT_EQ(memo.Import(7, MakePayload(RelSet::Single(1), 5.0)),
            MemoPublishResult::kStoredImproved);
}

TEST(SharedMemoExportTest, ImportsAreNotReExportedByAppends) {
  SharedMemo memo;
  memo.Import(7, MakePayload(RelSet::Single(1), 10.0));
  // A snapshot (min_gen 0) includes the import; the incremental append
  // window (min_gen >= 1) must not, or every flush would re-log the
  // whole imported cache.
  EXPECT_EQ(memo.ExportEntries(0).size(), 1u);
  EXPECT_EQ(memo.ExportEntries(1).size(), 0u);

  uint64_t gen = memo.BeginQuery();
  memo.Pin();
  memo.Publish(9, MakePayload(RelSet::Single(2), 20.0), gen, true);
  memo.Unpin();
  std::vector<MemoExportEntry> fresh = memo.ExportEntries(1);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].map_key, 9u);
}

TEST(SharedMemoExportTest, ExportImportRoundTripPreservesTrackerBalance) {
  MemoryTracker root(0, 0);
  std::vector<MemoExportEntry> exported;
  {
    SharedMemo::Config config;
    config.parent = &root;
    SharedMemo source(config);
    source.Pin();
    for (int i = 0; i < 8; ++i) {
      source.Publish(static_cast<uint64_t>(i + 1),
                     MakePayload(RelSet::Single(i), 10.0 + i), 1, false);
    }
    source.Unpin();
    exported = source.ExportEntries(0);
    ASSERT_EQ(exported.size(), 8u);
    source.Clear();
    EXPECT_EQ(root.used(), 0);
  }
  SharedMemo::Config config;
  config.parent = &root;
  SharedMemo dest(config);
  for (const MemoExportEntry& e : exported) {
    EXPECT_EQ(dest.Import(e.map_key, e.payload),
              MemoPublishResult::kStoredNew);
  }
  EXPECT_EQ(dest.entry_count(), 8);
  EXPECT_EQ(root.used(), dest.used_bytes());
  dest.Clear();
  EXPECT_EQ(root.used(), 0);
}

}  // namespace
}  // namespace eca
