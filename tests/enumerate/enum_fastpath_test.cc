// Tests for the enumerator fast paths: the swap-chain cycle guard, the
// hashed (fingerprinted) memo with stored-full-key collision verification,
// branch-and-bound pruning, the subtree cost memo, and parallel root
// enumeration. The unifying contract: none of them may change the chosen
// plan — the fast search returns exactly what the plain exhaustive loop
// returns, at any thread count.

#include <gtest/gtest.h>

#include <string>

#include "enumerate/enumerator.h"
#include "exec/executor.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

// A 3-relation chain whose ({R0}, {R1, R2}) decomposition needs one SwapUp
// to position p01 at the root.
PlanPtr ChainQuery() {
  return Plan::Join(
      JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
      Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
}

TEST(EnumFastPathTest, SwapChainGuardTripsAreCountedNotDegraded) {
  Rng rng(7);
  Database db = RandomDatabase(rng, 3, RandomDataOptions());
  PlanPtr query = ChainQuery();
  CostModel cost = CostModel::FromDatabase(db);

  EnumeratorOptions defaults;
  TopDownEnumerator plain(&cost, defaults);
  auto untripped = plain.Optimize(*query);
  EXPECT_EQ(untripped.stats.swap_chain_guard_trips, 0);

  // A zero-length chain allowance abandons every decomposition that needs
  // a swap. That must be *counted*, not silently swallowed like the seed
  // enumerator's hardcoded guard, and it is not a budget degradation: the
  // search over the remaining decompositions stays exhaustive.
  EnumeratorOptions strangled;
  strangled.max_swap_chain = 0;
  TopDownEnumerator e(&cost, strangled);
  auto result = e.Optimize(*query);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_GT(result.stats.swap_chain_guard_trips, 0);
  EXPECT_FALSE(result.stats.degraded);
  EXPECT_EQ(result.stats.trigger, BudgetTrigger::kNone);
  ExpectPlansEquivalent(*query, *result.plan, db, "guard-tripped search");
}

TEST(EnumFastPathTest, MemoCapSoftTriggerUnderHashedMemo) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 131 + 7);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 5;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    CostModel cost = CostModel::FromDatabase(db);

    EnumeratorOptions unlimited;
    TopDownEnumerator full(&cost, unlimited);
    auto best = full.Optimize(*query);

    EnumeratorOptions capped = unlimited;
    capped.budget.max_memo_entries = 1;
    TopDownEnumerator e(&cost, capped);
    auto result = e.Optimize(*query);
    ASSERT_NE(result.plan, nullptr);
    EXPECT_LE(result.stats.cache_entries, 1);
    if (best.stats.cache_entries > 1) {
      // The cap actually bit: soft trigger reported, but the search stayed
      // exhaustive — same optimum, it just lost reuse opportunities.
      EXPECT_TRUE(result.stats.degraded);
      EXPECT_EQ(result.stats.trigger, BudgetTrigger::kMemoEntries);
    }
    EXPECT_EQ(result.cost, best.cost) << "seed " << seed;
    ExpectPlansEquivalent(*query, *result.plan, db,
                          "memo-capped search seed " + std::to_string(seed));
  }
}

TEST(EnumFastPathTest, ForcedSignatureCollisionsRejectedByFullKey) {
  // collide_signatures degrades every memo signature to one value, so
  // every distinct external-d-edge key vector for a relation set lands in
  // the same hash bucket. The stored full key must reject those probes
  // (counted as sig_collisions) and the results must not change — this is
  // the soundness story for keying the memo on a 64-bit signature.
  int64_t collisions = 0;
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 31 + 17);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 4 + seed % 2;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    CostModel cost = CostModel::FromDatabase(db);

    EnumeratorOptions honest;
    TopDownEnumerator h(&cost, honest);
    auto expected = h.Optimize(*query);

    EnumeratorOptions colliding;
    colliding.collide_signatures = true;
    TopDownEnumerator c(&cost, colliding);
    auto result = c.Optimize(*query);
    ASSERT_NE(result.plan, nullptr);
    EXPECT_EQ(result.cost, expected.cost) << "seed " << seed;
    EXPECT_EQ(result.plan->ToString(), expected.plan->ToString())
        << "seed " << seed;
    collisions += result.stats.sig_collisions;
    ExpectPlansEquivalent(*query, *result.plan, db,
                          "colliding-signature search seed " +
                              std::to_string(seed));
  }
  // The sweep contains relation sets with several distinct external-d-edge
  // signatures (the same population the d-edge reuse tests draw from), so
  // forcing them into one bucket must produce verified-and-rejected probes.
  EXPECT_GT(collisions, 0);
}

TEST(EnumFastPathTest, ParallelRootEnumerationIsByteIdentical) {
  bool saw_parallel_work = false;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 97 + 5);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 5 + seed % 2;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    CostModel cost = CostModel::FromDatabase(db);

    EnumeratorOptions sequential;
    TopDownEnumerator s(&cost, sequential);
    auto base = s.Optimize(*query);
    ASSERT_NE(base.plan, nullptr);
    if (base.stats.root_tasks > 1) saw_parallel_work = true;

    for (int threads : {2, 4}) {
      EnumeratorOptions parallel = sequential;
      parallel.num_threads = threads;
      TopDownEnumerator p(&cost, parallel);
      auto result = p.Optimize(*query);
      ASSERT_NE(result.plan, nullptr);
      EXPECT_EQ(result.cost, base.cost)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(result.plan->ToString(), base.plan->ToString())
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(PlanFingerprint(*result.plan), PlanFingerprint(*base.plan))
          << "seed " << seed << " threads " << threads;
    }
  }
  // The sweep must actually exercise multi-pair roots, or the checks above
  // prove nothing about the merge.
  EXPECT_TRUE(saw_parallel_work);
}

}  // namespace
}  // namespace eca
