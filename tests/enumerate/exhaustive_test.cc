// Tests for the exhaustive (CBA-style, Section 5.4) enumeration baseline
// and for plan validation of every enumerator output.

#include <gtest/gtest.h>

#include "algebra/validate.h"
#include "enumerate/enumerator.h"
#include "enumerate/exhaustive.h"
#include "enumerate/join_order.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

class ExhaustiveRandomized : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveRandomized, BestPlanEquivalentAndCountsMatch) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 211 + 9);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);

  ExhaustiveResult ex = ExhaustiveEnumerate(*query, cost);
  ASSERT_NE(ex.plan, nullptr);
  // ECA realizes every ordering of the no-full-outerjoin class.
  EXPECT_EQ(ex.orderings_realized, ex.orderings_total);
  ExpectPlansEquivalent(*query, *ex.plan, db, "exhaustive best plan");

  // The chosen plan can never cost more than the (realized) original
  // ordering.
  PlanPtr original = query->Clone();
  EXPECT_LE(ex.cost, cost.Cost(*original) * 1.0001 + 1e-6);
}

TEST_P(ExhaustiveRandomized, TopDownWithinExhaustiveBallpark) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 977 + 2);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 4;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);

  ExhaustiveResult ex = ExhaustiveEnumerate(*query, cost);
  EnumeratorOptions opts;
  TopDownEnumerator td(&cost, opts);
  auto topdown = td.Optimize(*query);
  ASSERT_NE(topdown.plan, nullptr);
  // Both explore the same ordering space; derivation routes may place
  // compensations differently, so costs agree only approximately — but
  // neither should be wildly worse.
  EXPECT_LE(topdown.cost, ex.cost * 2.0 + 1e-6)
      << "top-down:\n" << topdown.plan->ToString() << "exhaustive:\n"
      << ex.plan->ToString();
  EXPECT_LE(ex.cost, topdown.cost * 2.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveRandomized,
                         ::testing::Range(0, 16));

// --------------------------------------------------------------------------
// Plan validation
// --------------------------------------------------------------------------

TEST(ValidateTest, AcceptsWellFormedAndOptimizerOutputs) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 5 + 77);
    RandomDataOptions dopts;
    RandomQueryOptions qopts;
    qopts.num_rels = 4;
    Database db = RandomDatabase(rng, qopts.num_rels, dopts);
    PlanPtr query = RandomQuery(rng, qopts, dopts);
    std::vector<Schema> base = db.BaseSchemas();
    EXPECT_TRUE(ValidatePlan(*query, base).empty());

    CostModel cost = CostModel::FromDatabase(db);
    EnumeratorOptions opts;
    TopDownEnumerator e(&cost, opts);
    auto result = e.Optimize(*query);
    std::vector<std::string> problems = ValidatePlan(*result.plan, base);
    EXPECT_TRUE(problems.empty())
        << problems[0] << "\n" << result.plan->ToString();
  }
}

TEST(ValidateTest, RejectsMalformedPlans) {
  std::vector<Schema> base = {
      Schema({{0, "a", DataType::kInt64}}),
      Schema({{1, "a", DataType::kInt64}}),
  };
  // Out-of-range leaf.
  EXPECT_FALSE(ValidatePlan(*Plan::Leaf(7), base).empty());
  // Duplicate leaf.
  PlanPtr dup = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 0, "a"),
                           Plan::Leaf(0), Plan::Leaf(0));
  EXPECT_FALSE(ValidatePlan(*dup, base).empty());
  // Predicate referencing an invisible relation.
  PlanPtr bad_pred = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 5, "a"),
                                Plan::Leaf(0), Plan::Leaf(1));
  EXPECT_FALSE(ValidatePlan(*bad_pred, base).empty());
  // Missing predicate on a non-cross join.
  PlanPtr no_pred = Plan::Join(JoinOp::kCross, nullptr, Plan::Leaf(0),
                               Plan::Leaf(1));
  no_pred->set_op(JoinOp::kInner);
  EXPECT_FALSE(ValidatePlan(*no_pred, base).empty());
  // Gamma over invisible attributes.
  PlanPtr bad_gamma =
      Plan::Comp(CompOp::Gamma(RelSet::Single(5)), Plan::Leaf(0));
  EXPECT_FALSE(ValidatePlan(*bad_gamma, base).empty());
  // Projection keeping nothing.
  PlanPtr bad_pi =
      Plan::Comp(CompOp::Project(RelSet::Single(5)), Plan::Leaf(0));
  EXPECT_FALSE(ValidatePlan(*bad_pi, base).empty());
  // A predicate referencing attributes hidden by an antijoin below.
  PlanPtr hidden = Plan::Join(
      JoinOp::kInner, EquiJoin(1, "a", 0, "a"),
      Plan::Join(JoinOp::kLeftAnti, EquiJoin(0, "a", 1, "a"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(1));
  EXPECT_FALSE(ValidatePlan(*hidden, base).empty());
}

}  // namespace
}  // namespace eca
