// Enumeration budgets and graceful degradation: a budget-capped or
// fault-injected Optimize must still return a plan that executes to the
// same relation as the unoptimized query, and must say it degraded.

#include <gtest/gtest.h>

#include "eca/optimizer.h"
#include "enumerate/enumerator.h"
#include "exec/query_context.h"
#include "testing/fault_injection.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

struct Fixture {
  Database db;
  PlanPtr query;
};

Fixture MakeFixture(int seed, int rels = 4) {
  Rng rng(static_cast<uint64_t>(seed) * 131 + 7);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = rels;
  Fixture f;
  f.db = RandomDatabase(rng, rels, dopts);
  f.query = RandomQuery(rng, qopts, dopts);
  return f;
}

// The acceptance bar: max_enumerated_nodes=1 leaves no room to enumerate
// anything, so no complete plan exists and the optimizer reroutes through
// the sizes-only order (docs/planner-policies.md, "Degradation") — the
// same trigger the service's admission degrade path reports, with the
// cause recorded in the provenance note.
TEST(BudgetTest, OneNodeBudgetDegradesToSizesOnlyOrder) {
  for (int seed = 0; seed < 6; ++seed) {
    Fixture f = MakeFixture(seed);
    Optimizer::Options opts;
    opts.budget.max_enumerated_nodes = 1;
    Optimizer opt(opts);
    auto best = opt.Optimize(*f.query, f.db);
    ASSERT_NE(best.plan, nullptr);
    EXPECT_TRUE(best.stats.degraded);
    EXPECT_EQ(best.stats.trigger, BudgetTrigger::kSizesOnlyFallback);
    EXPECT_NE(best.provenance.policy_note.find("no complete plan"),
              std::string::npos)
        << best.provenance.policy_note;
    Relation direct = opt.Execute(*f.query, f.db);
    Relation capped = opt.Execute(*best.plan, f.db);
    ExpectSameRelation(direct, capped, "1-node budget fallback");
  }
}

// Intermediate budgets return the best-so-far complete plan; every budget
// level must stay result-identical to the query.
TEST(BudgetTest, EveryNodeBudgetLevelStaysCorrect) {
  Fixture f = MakeFixture(3);
  Optimizer unlimited;
  Relation direct = unlimited.Execute(*f.query, f.db);
  int64_t full_calls = unlimited.Optimize(*f.query, f.db).stats.subplan_calls;
  ASSERT_GT(full_calls, 1);
  for (int64_t cap : {int64_t{1}, int64_t{2}, full_calls / 2, full_calls}) {
    Optimizer::Options opts;
    opts.budget.max_enumerated_nodes = cap;
    Optimizer opt(opts);
    auto best = opt.Optimize(*f.query, f.db);
    ASSERT_NE(best.plan, nullptr) << "cap " << cap;
    EXPECT_LE(best.stats.subplan_calls, cap);
    Relation capped = opt.Execute(*best.plan, f.db);
    ExpectSameRelation(direct, capped,
                       "budget cap " + std::to_string(cap));
  }
}

TEST(BudgetTest, UnlimitedBudgetNotDegraded) {
  Fixture f = MakeFixture(1, 4);
  Optimizer opt;
  auto best = opt.Optimize(*f.query, f.db);
  EXPECT_FALSE(best.stats.degraded);
  EXPECT_EQ(best.stats.trigger, BudgetTrigger::kNone);
}

TEST(BudgetTest, MemoCapBoundsCacheAndKeepsSearchingCorrectly) {
  Fixture f = MakeFixture(2);
  Optimizer::Options opts;
  opts.budget.max_memo_entries = 2;
  Optimizer opt(opts);
  auto best = opt.Optimize(*f.query, f.db);
  ASSERT_NE(best.plan, nullptr);
  EXPECT_LE(best.stats.cache_entries, 2);
  Relation direct = opt.Execute(*f.query, f.db);
  Relation capped = opt.Execute(*best.plan, f.db);
  ExpectSameRelation(direct, capped, "memo-capped optimization");
}

TEST(BudgetTest, WallClockDeadlineDegrades) {
  Fixture small = MakeFixture(4);
  Optimizer::Options opts;
  opts.budget.wall_clock_ms = -1;  // <= 0 means unlimited...
  Optimizer opt(opts);
  EXPECT_FALSE(opt.Optimize(*small.query, small.db).stats.degraded);

  // ...so use the smallest positive deadline and a query big enough that
  // enumeration cannot finish within it (6 relations). If the machine is
  // superhumanly fast the test still passes (the plan stays correct), it
  // just won't degrade.
  Fixture f = MakeFixture(4, 6);
  opts.budget.wall_clock_ms = 1;
  Optimizer timed(opts);
  auto best = timed.Optimize(*f.query, f.db);
  ASSERT_NE(best.plan, nullptr);
  Relation direct = timed.Execute(*f.query, f.db);
  Relation capped = timed.Execute(*best.plan, f.db);
  ExpectSameRelation(direct, capped, "deadline-capped optimization");
  if (best.stats.degraded) {
    // kWallClock when a complete plan survived the deadline,
    // kSizesOnlyFallback when none did and the reroute produced the order.
    EXPECT_TRUE(best.stats.trigger == BudgetTrigger::kWallClock ||
                best.stats.trigger == BudgetTrigger::kSizesOnlyFallback)
        << BudgetTriggerName(best.stats.trigger);
  }
}

// Deterministic wall-clock degradation via the fault clock: every NowMs
// observation advances fake time 1ms, so the deadline trips after a fixed
// number of budget checks — no sleeping, no flakiness. The deadline is
// observed both inside root tasks and at the wave barriers of the
// parallel schedule, so every thread count must degrade to a valid plan:
// kWallClock when a complete best-so-far plan survived the deadline,
// kSizesOnlyFallback when none did and the sizes-only reroute produced
// the order instead.
TEST(BudgetTest, FaultClockDeadlineDegradesAtEveryThreadCount) {
  Fixture f = MakeFixture(5, 6);
  Relation direct = Optimizer().Execute(*f.query, f.db);
  for (int threads : {1, 2, 4}) {
    Optimizer::Options opts;
    opts.num_threads = threads;
    opts.budget.wall_clock_ms = 40;
    Optimizer opt(opts);
    Optimizer::Optimized best;
    {
      ScopedFaultClock clock(/*now_ms=*/1000, /*step_ms=*/1);
      best = opt.Optimize(*f.query, f.db);
    }
    ASSERT_NE(best.plan, nullptr) << "threads " << threads;
    EXPECT_TRUE(best.stats.degraded) << "threads " << threads;
    EXPECT_TRUE(best.stats.trigger == BudgetTrigger::kWallClock ||
                best.stats.trigger == BudgetTrigger::kSizesOnlyFallback)
        << "threads " << threads << " trigger "
        << BudgetTriggerName(best.stats.trigger);
    Relation timed = opt.Execute(*best.plan, f.db);
    ExpectSameRelation(direct, timed,
                       "fault-clock deadline, threads " +
                           std::to_string(threads));
  }
}

// OptimizeGoverned clamps the enumeration budget to the context's
// remaining deadline: one --timeout-ms covers optimization too. The fake
// clock eats the whole deadline before any complete plan exists, so the
// no-complete-plan reroute stamps the sizes-only trigger.
TEST(BudgetTest, GovernedOptimizeSharesDeadlineWithEnumerator) {
  Fixture f = MakeFixture(6, 6);
  ScopedFaultClock clock(/*now_ms=*/1000, /*step_ms=*/1);
  QueryContext::Limits limits;
  limits.timeout_ms = 30;
  QueryContext ctx(limits);
  ctx.Arm();
  Optimizer opt;
  auto best = opt.OptimizeGoverned(*f.query, f.db, &ctx);
  ASSERT_NE(best.plan, nullptr);
  EXPECT_TRUE(best.stats.degraded);
  EXPECT_EQ(best.stats.trigger, BudgetTrigger::kSizesOnlyFallback);
}

// A context already past its deadline still yields a plan (the sizes-only
// order, degraded) — the caller decides whether to bother executing it.
TEST(BudgetTest, ExpiredContextDegradesImmediately) {
  Fixture f = MakeFixture(7, 4);
  ScopedFaultClock clock(/*now_ms=*/1000, /*step_ms=*/1);
  QueryContext::Limits limits;
  limits.timeout_ms = 1;
  QueryContext ctx(limits);
  ctx.Arm();
  for (int i = 0; i < 10 && !ctx.ShouldStop(); ++i) {
  }
  EXPECT_TRUE(ctx.ShouldStop());
  auto best = Optimizer().OptimizeGoverned(*f.query, f.db, &ctx);
  ASSERT_NE(best.plan, nullptr);
  EXPECT_TRUE(best.stats.degraded);
  EXPECT_EQ(best.stats.trigger, BudgetTrigger::kSizesOnlyFallback);
}

// Each fault-injection point, armed: valid plan, degraded=true, result
// identical to the unoptimized query (the acceptance criterion).
TEST(FaultInjectedOptimizeTest, EachPointDegradesGracefully) {
  for (FaultPoint point : {FaultPoint::kEnumeratorBudget,
                           FaultPoint::kRewriteRule,
                           FaultPoint::kAllocation}) {
    for (int seed = 0; seed < 4; ++seed) {
      Fixture f = MakeFixture(seed);
      FaultInjector::Reset();
      ScopedFault fault(point);
      Optimizer opt;
      auto best = opt.Optimize(*f.query, f.db);
      FaultInjector::Disarm(point);
      ASSERT_NE(best.plan, nullptr)
          << FaultPointName(point) << " seed " << seed;
      EXPECT_TRUE(best.stats.degraded)
          << FaultPointName(point) << " seed " << seed;
      Relation direct = opt.Execute(*f.query, f.db);
      Relation faulted = opt.Execute(*best.plan, f.db);
      ExpectSameRelation(direct, faulted,
                         std::string("fault point ") + FaultPointName(point));
    }
  }
  FaultInjector::Reset();
}

// A fault armed for a later hit (skip > 0) degrades mid-search: the
// best-so-far plan must be complete and correct.
TEST(FaultInjectedOptimizeTest, MidSearchFaultKeepsBestSoFar) {
  for (int seed = 0; seed < 4; ++seed) {
    Fixture f = MakeFixture(seed);
    FaultInjector::Reset();
    ScopedFault fault(FaultPoint::kEnumeratorBudget, /*skip=*/50);
    Optimizer opt;
    auto best = opt.Optimize(*f.query, f.db);
    ASSERT_NE(best.plan, nullptr);
    Relation direct = opt.Execute(*f.query, f.db);
    Relation faulted = opt.Execute(*best.plan, f.db);
    ExpectSameRelation(direct, faulted, "mid-search fault");
  }
  FaultInjector::Reset();
}

}  // namespace
}  // namespace eca
