// Appendix D: queries with null-tolerant join predicates. The approach
// degrades to partial reorderability — only the transformations valid under
// the tolerant matrix (and compensations whose derivations survive) are
// used — but every plan produced must remain equivalent to the query.

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "enumerate/join_order.h"
#include "enumerate/realize.h"
#include "enumerate/subtree.h"
#include "exec/executor.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

class NullTolerant : public ::testing::TestWithParam<int> {};

TEST_P(NullTolerant, OptimizerStaysSound) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 101 + 31);
  RandomDataOptions dopts;
  dopts.null_prob = 0.35;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  qopts.tolerant_pred_prob = 0.6;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);

  CostModel cost = CostModel::FromDatabase(db);
  for (SwapPolicy policy :
       {SwapPolicy::kECA, SwapPolicy::kTBA, SwapPolicy::kCBA}) {
    EnumeratorOptions opts;
    opts.policy = policy;
    opts.reuse_subplans = seed % 2 == 0;
    TopDownEnumerator e(&cost, opts);
    auto result = e.Optimize(*query);
    ASSERT_NE(result.plan, nullptr);
    ExpectPlansEquivalent(*query, *result.plan, db,
                          "null-tolerant optimization");
  }
}

TEST_P(NullTolerant, RealizedOrderingsStaySound) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 757 + 5);
  RandomDataOptions dopts;
  dopts.null_prob = 0.35;
  RandomQueryOptions qopts;
  qopts.num_rels = 4;
  qopts.tolerant_pred_prob = 0.5;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);

  int realized = 0;
  for (const OrderingNodePtr& theta :
       AllJoinOrderingTrees(query->leaves(), PredicateRefSets(*query))) {
    PlanPtr plan = RealizeOrdering(*query, *theta, SwapPolicy::kECA);
    if (plan == nullptr) continue;  // partial reorderability is expected
    ++realized;
    EXPECT_EQ(OrderingKey(*plan), theta->Key());
    ExpectPlansEquivalent(*query, *plan, db,
                          "tolerant ordering " + theta->Key());
  }
  EXPECT_GE(realized, 1);  // at least the original ordering
}

INSTANTIATE_TEST_SUITE_P(Seeds, NullTolerant, ::testing::Range(0, 20));

// An outerjoin chain with null-tolerant predicates cannot be reassociated
// (the tolerant matrix voids assoc(loj, loj)); the approach must refuse
// rather than produce a wrong plan.
TEST(NullTolerantExamples, TolerantOuterjoinChainIsPinned) {
  PredRef p01 = Predicate::WithLabel(
      Predicate::Or({Eq(Col(0, "a"), Col(1, "a")),
                     Predicate::IsNull(Col(1, "a"))}),
      "p01t");
  PredRef p12 = Predicate::WithLabel(
      Predicate::Or({Eq(Col(1, "b"), Col(2, "b")),
                     Predicate::IsNull(Col(1, "b"))}),
      "p12t");
  EXPECT_FALSE(p01->null_intolerant());
  PlanPtr query = Plan::Join(
      JoinOp::kLeftOuter, p01, Plan::Leaf(0),
      Plan::Join(JoinOp::kLeftOuter, p12, Plan::Leaf(1), Plan::Leaf(2)));
  auto thetas =
      AllJoinOrderingTrees(query->leaves(), PredicateRefSets(*query));
  int realized = 0;
  for (const OrderingNodePtr& theta : thetas) {
    if (RealizeOrdering(*query, *theta, SwapPolicy::kECA)) ++realized;
  }
  EXPECT_EQ(realized, 1);  // only the original ordering

  // The same chain with null-intolerant predicates is fully reorderable.
  PlanPtr strict = Plan::Join(
      JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  realized = 0;
  for (const OrderingNodePtr& theta : AllJoinOrderingTrees(
           strict->leaves(), PredicateRefSets(*strict))) {
    if (RealizeOrdering(*strict, *theta, SwapPolicy::kECA)) ++realized;
  }
  EXPECT_EQ(realized, 2);
}

}  // namespace
}  // namespace eca
