// Tests for the SQL-level implementation (Section 6.1 / Figure 7): the
// generated SQL must render every operator with the construct the paper
// prescribes, reference every base table, and stay structurally sound.

#include <gtest/gtest.h>

#include "enumerate/join_order.h"
#include "enumerate/realize.h"
#include "sqlgen/sqlgen.h"
#include "tpch/paper_queries.h"

namespace eca {
namespace {

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

int Count(const std::string& hay, const std::string& needle) {
  int n = 0;
  size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

bool BalancedParens(const std::string& s) {
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

SqlOptions TpchNames() {
  SqlOptions o;
  o.table_names = {"supplier", "partsupp", "part", "lineitem", "orders"};
  return o;
}

TEST(SqlGenTest, DirectQ1UsesNotExists) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, 5.0);
  std::string sql = PlanToSql(*q.plan, q.db.BaseSchemas(), TpchNames());
  // Figure 7(a): the direct plan nests two NOT EXISTS antijoins.
  EXPECT_EQ(Count(sql, "NOT EXISTS"), 2) << sql;
  EXPECT_TRUE(Contains(sql, "FROM supplier"));
  EXPECT_TRUE(Contains(sql, "FROM partsupp"));
  EXPECT_TRUE(Contains(sql, "FROM part"));
  EXPECT_TRUE(BalancedParens(sql)) << sql;
}

TEST(SqlGenTest, EcaQ1MatchesFigure7Shape) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, 5.0);
  // The reordered plan of Figure 5(b): supplier loj partsupp first.
  auto thetas =
      AllJoinOrderingTrees(q.plan->leaves(), PredicateRefSets(*q.plan));
  PlanPtr eca;
  for (const OrderingNodePtr& theta : thetas) {
    if (theta->Key() == "((R0,R1),R2)") {
      eca = RealizeOrdering(*q.plan, *theta, SwapPolicy::kECA);
    }
  }
  ASSERT_NE(eca, nullptr);
  std::string sql = PlanToSql(*eca, q.db.BaseSchemas(), TpchNames());
  // Figure 7(b)'s ingredients: LEFT JOINs instead of NOT EXISTS, a window
  // (best-match) block, and the gamma IS NULL filter.
  EXPECT_GE(Count(sql, "LEFT JOIN"), 2) << sql;
  EXPECT_TRUE(Contains(sql, "ROW_NUMBER() OVER (ORDER BY")) << sql;
  EXPECT_TRUE(Contains(sql, "LAG(")) << sql;
  EXPECT_TRUE(Contains(sql, "IS NULL")) << sql;
  EXPECT_EQ(Count(sql, "NOT EXISTS"), 0) << sql;
  EXPECT_TRUE(BalancedParens(sql)) << sql;
}

TEST(SqlGenTest, LambdaRendersCaseWhen) {
  PredRef p = EquiJoin(0, "s_suppkey", 1, "ps_suppkey", "p12");
  PlanPtr plan = Plan::Comp(
      CompOp::Lambda(p, RelSet::Single(1)),
      Plan::Join(JoinOp::kLeftOuter, p, Plan::Leaf(0), Plan::Leaf(1)));
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, 5.0);
  std::string sql = PlanToSql(*plan, q.db.BaseSchemas(), TpchNames());
  EXPECT_TRUE(Contains(sql, "CASE WHEN")) << sql;
  // Only R1's columns are nullified.
  EXPECT_TRUE(Contains(sql, "CASE WHEN r0_s_suppkey = r1_ps_suppkey"));
  EXPECT_TRUE(BalancedParens(sql));
}

TEST(SqlGenTest, SemiJoinRendersExists) {
  PredRef p = EquiJoin(0, "s_suppkey", 1, "ps_suppkey", "p12");
  PlanPtr plan =
      Plan::Join(JoinOp::kLeftSemi, p, Plan::Leaf(0), Plan::Leaf(1));
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, 5.0);
  std::string sql = PlanToSql(*plan, q.db.BaseSchemas(), TpchNames());
  EXPECT_TRUE(Contains(sql, "WHERE EXISTS")) << sql;
}

TEST(SqlGenTest, FullOuterAndCross) {
  PredRef p = EquiJoin(0, "s_suppkey", 1, "ps_suppkey", "p12");
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, 5.0);
  PlanPtr foj =
      Plan::Join(JoinOp::kFullOuter, p, Plan::Leaf(0), Plan::Leaf(1));
  EXPECT_TRUE(Contains(PlanToSql(*foj, q.db.BaseSchemas(), TpchNames()),
                       "FULL JOIN"));
  PlanPtr cross =
      Plan::Join(JoinOp::kCross, nullptr, Plan::Leaf(0), Plan::Leaf(1));
  EXPECT_TRUE(Contains(PlanToSql(*cross, q.db.BaseSchemas(), TpchNames()),
                       "CROSS JOIN"));
}

TEST(SqlGenTest, GammaStarRendersGuardedNullificationAndBestMatch) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ1(data, 5.0);
  PlanPtr plan = Plan::Comp(
      CompOp::GammaStar(RelSet::Single(1), RelSet::Single(0)),
      Plan::Join(JoinOp::kLeftOuter, PredP12(5.0), Plan::Leaf(0),
                 Plan::Leaf(1)));
  std::string sql = PlanToSql(*plan, q.db.BaseSchemas(), TpchNames());
  EXPECT_TRUE(Contains(sql, "CASE WHEN (")) << sql;
  EXPECT_TRUE(Contains(sql, "ROW_NUMBER()")) << sql;
  EXPECT_TRUE(BalancedParens(sql));
}

}  // namespace
}  // namespace eca

namespace eca {
namespace {

TEST(SqlGenTest, Q3FullPlanRendersAllFiveTables) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ3(data, 5.0);
  SqlOptions names;
  names.table_names = {"supplier", "partsupp", "part", "lineitem", "orders"};
  std::string sql = PlanToSql(*q.plan, q.db.BaseSchemas(), names);
  for (const char* t :
       {"supplier", "partsupp", "part", "lineitem", "orders"}) {
    EXPECT_NE(sql.find(std::string("FROM ") + t), std::string::npos) << t;
  }
  // Two antijoins -> two NOT EXISTS; two inner joins -> two JOIN ... ON.
  int not_exists = 0, joins = 0;
  for (size_t pos = 0; (pos = sql.find("NOT EXISTS", pos)) != std::string::npos;
       pos += 10) {
    ++not_exists;
  }
  size_t line_start = 0;
  while (line_start < sql.size()) {
    size_t eol = sql.find('\n', line_start);
    if (eol == std::string::npos) eol = sql.size();
    std::string line = sql.substr(line_start, eol - line_start);
    size_t first = line.find_first_not_of(' ');
    if (first != std::string::npos && line.compare(first, 5, "JOIN ") == 0) {
      ++joins;
    }
    line_start = eol + 1;
  }
  EXPECT_EQ(not_exists, 2);
  EXPECT_EQ(joins, 2);
}

TEST(SqlGenTest, EcaQ3PlanRendersWindowedBestMatch) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 3);
  PaperQuery q = BuildQ3(data, 5.0);
  // Realize the Figure 5(h)-style ordering: supplier-partsupp first, then
  // lineitem, orders, and part last.
  OrderingNodePtr theta;
  for (const OrderingNodePtr& t : AllJoinOrderingTrees(
           q.plan->leaves(), PredicateRefSets(*q.plan))) {
    if (t->Key() == "((((R0,R1),R3),R4),R2)") theta = t;
  }
  ASSERT_NE(theta, nullptr);
  PlanPtr eca = RealizeOrdering(*q.plan, *theta, SwapPolicy::kECA);
  ASSERT_NE(eca, nullptr);
  SqlOptions names;
  names.table_names = {"supplier", "partsupp", "part", "lineitem", "orders"};
  std::string sql = PlanToSql(*eca, q.db.BaseSchemas(), names);
  EXPECT_NE(sql.find("ROW_NUMBER()"), std::string::npos);
  EXPECT_NE(sql.find("LEFT JOIN"), std::string::npos);
  EXPECT_NE(sql.find("CASE WHEN"), std::string::npos);
}

}  // namespace
}  // namespace eca
