// The JOB-style workload generator (sqlgen/workload.h): determinism,
// topology shapes, and the conjunct structure the policy layer's
// acyclicity analysis depends on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "enumerate/acyclic.h"
#include "sqlgen/workload.h"

#include "../test_util.h"

namespace eca {
namespace {

TEST(WorkloadTest, ParseTopologyRoundTripsAndRejectsUnknown) {
  for (Topology t : {Topology::kChain, Topology::kStar, Topology::kClique}) {
    EXPECT_EQ(*ParseTopology(TopologyName(t)), t);
  }
  EXPECT_EQ(*ParseTopology("Star"), Topology::kStar);
  EXPECT_FALSE(ParseTopology("snowflake").ok());
}

TEST(WorkloadTest, SameSeedSameWorkload) {
  WorkloadOptions wopts;
  wopts.topology = Topology::kStar;
  wopts.num_rels = 9;
  wopts.seed = 42;
  Workload a = GenerateWorkload(wopts);
  Workload b = GenerateWorkload(wopts);
  EXPECT_EQ(a.query->ToString(), b.query->ToString());
  ASSERT_EQ(a.db.NumTables(), b.db.NumTables());
  for (int i = 0; i < a.db.NumTables(); ++i) {
    ExpectSameRelation(a.db.table(i), b.db.table(i),
                       "table R" + std::to_string(i));
  }
}

TEST(WorkloadTest, DifferentSeedsDifferentData) {
  WorkloadOptions wopts;
  wopts.num_rels = 8;
  wopts.seed = 1;
  Workload a = GenerateWorkload(wopts);
  wopts.seed = 2;
  Workload b = GenerateWorkload(wopts);
  bool any_differs = false;
  for (int i = 0; i < a.db.NumTables() && !any_differs; ++i) {
    any_differs = a.db.table(i).NumRows() != b.db.table(i).NumRows() ||
                  a.db.table(i).ToString() != b.db.table(i).ToString();
  }
  EXPECT_TRUE(any_differs);
}

TEST(WorkloadTest, GeneratesOneTablePerRelation) {
  for (int n : {8, 12, 20}) {
    WorkloadOptions wopts;
    wopts.num_rels = n;
    Workload w = GenerateWorkload(wopts);
    EXPECT_EQ(w.db.NumTables(), n);
    ASSERT_NE(w.query, nullptr);
  }
}

// The conjunct-level hyperedge structure is the generator's contract with
// the policy layer: chains and stars reduce under GYO, cliques do not,
// and the edge counts match the topology definition.
TEST(WorkloadTest, TopologyShapesMatchTheirConjunctGraphs) {
  const int n = 7;
  RelSet universe;
  for (int i = 0; i < n; ++i) universe = universe.With(i);

  WorkloadOptions wopts;
  wopts.num_rels = n;

  wopts.topology = Topology::kChain;
  std::vector<RelSet> chain = ConjunctRefSets(*GenerateWorkload(wopts).query);
  EXPECT_EQ(chain.size(), static_cast<size_t>(n - 1));
  EXPECT_TRUE(GyoAcyclic(universe, chain));

  wopts.topology = Topology::kStar;
  std::vector<RelSet> star = ConjunctRefSets(*GenerateWorkload(wopts).query);
  EXPECT_EQ(star.size(), static_cast<size_t>(n - 1));
  EXPECT_TRUE(GyoAcyclic(universe, star));
  // Every star conjunct touches the hub.
  for (const RelSet& e : star) EXPECT_TRUE(e.Contains(0));

  wopts.topology = Topology::kClique;
  std::vector<RelSet> clique =
      ConjunctRefSets(*GenerateWorkload(wopts).query);
  EXPECT_EQ(clique.size(), static_cast<size_t>(n * (n - 1) / 2));
  EXPECT_FALSE(GyoAcyclic(universe, clique));
}

}  // namespace
}  // namespace eca
