// AdmissionController contract: concurrency slots, the bounded FIFO
// queue, overload shedding, the memory-commit ledger, deadline-aware
// rejection, the degraded-planning bit and drain semantics — all without
// a socket in sight.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/admission.h"

namespace eca {
namespace {

TEST(AdmissionTest, FastPathAdmitsAndReleases) {
  AdmissionConfig config;
  config.max_concurrent = 2;
  AdmissionController ctrl(config);
  StatusOr<Admission> a = ctrl.Admit(/*commit_bytes=*/1 << 20,
                                     /*remaining_deadline_ms=*/0);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->commit_bytes, 1 << 20);
  EXPECT_EQ(a->queue_wait_ms, 0);
  EXPECT_FALSE(a->degrade_plan);
  EXPECT_EQ(ctrl.active(), 1);
  EXPECT_EQ(ctrl.committed_bytes(), 1 << 20);
  ctrl.Release(*a);
  EXPECT_EQ(ctrl.active(), 0);
  EXPECT_EQ(ctrl.committed_bytes(), 0);
}

TEST(AdmissionTest, DefaultBudgetChargedWhenNoneDeclared) {
  AdmissionConfig config;
  config.default_commit_bytes = 7 << 20;
  AdmissionController ctrl(config);
  StatusOr<Admission> a = ctrl.Admit(0, 0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->commit_bytes, 7 << 20);
  EXPECT_EQ(ctrl.committed_bytes(), 7 << 20);
  ctrl.Release(*a);
}

TEST(AdmissionTest, ShedsImmediatelyWhenQueueFull) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue = 0;  // no queue at all: saturation sheds
  AdmissionController ctrl(config);
  StatusOr<Admission> first = ctrl.Admit(0, 0);
  ASSERT_TRUE(first.ok());
  StatusOr<Admission> second = ctrl.Admit(0, 0);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  ctrl.Release(*first);
  // The shed was stateless: a later arrival is admitted normally.
  StatusOr<Admission> third = ctrl.Admit(0, 0);
  ASSERT_TRUE(third.ok());
  ctrl.Release(*third);
}

TEST(AdmissionTest, RejectsHopelessDeadlineBeforeQueueing) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.est_run_ms = 100;
  AdmissionController ctrl(config);
  StatusOr<Admission> holder = ctrl.Admit(0, 0);
  ASSERT_TRUE(holder.ok());
  // 50ms of deadline cannot cover a 100ms estimated run: reject now,
  // without burning 50ms in the queue first.
  StatusOr<Admission> hopeless = ctrl.Admit(0, /*remaining_deadline_ms=*/50);
  ASSERT_FALSE(hopeless.ok());
  EXPECT_EQ(hopeless.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctrl.queued(), 0);
  ctrl.Release(*holder);
}

TEST(AdmissionTest, QueuedWaiterAdmittedAfterRelease) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  AdmissionController ctrl(config);
  StatusOr<Admission> holder = ctrl.Admit(0, 0);
  ASSERT_TRUE(holder.ok());

  StatusOr<Admission> waited = Status::Internal("not yet");
  std::thread waiter([&] { waited = ctrl.Admit(0, /*no deadline*/ 0); });
  while (ctrl.queued() != 1) std::this_thread::yield();
  ctrl.Release(*holder);
  waiter.join();
  ASSERT_TRUE(waited.ok()) << waited.status().ToString();
  EXPECT_EQ(ctrl.active(), 1);
  EXPECT_EQ(ctrl.queued(), 0);
  ctrl.Release(*waited);
}

TEST(AdmissionTest, QueuedWaiterTimesOutAtItsDeadline) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  AdmissionController ctrl(config);
  StatusOr<Admission> holder = ctrl.Admit(0, 0);
  ASSERT_TRUE(holder.ok());
  StatusOr<Admission> timed = ctrl.Admit(0, /*remaining_deadline_ms=*/60);
  ASSERT_FALSE(timed.ok());
  EXPECT_EQ(timed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctrl.queued(), 0);
  ctrl.Release(*holder);
}

TEST(AdmissionTest, CommitLedgerQueuesUntilBudgetFits) {
  AdmissionConfig config;
  config.max_concurrent = 8;
  config.commit_limit_bytes = 100;
  AdmissionController ctrl(config);
  StatusOr<Admission> big = ctrl.Admit(60, 0);
  ASSERT_TRUE(big.ok());
  // 60 + 60 > 100: the second query waits for the ledger, not a slot.
  StatusOr<Admission> waited = Status::Internal("not yet");
  std::thread waiter([&] { waited = ctrl.Admit(60, 0); });
  while (ctrl.queued() != 1) std::this_thread::yield();
  EXPECT_EQ(ctrl.active(), 1);
  ctrl.Release(*big);
  waiter.join();
  ASSERT_TRUE(waited.ok()) << waited.status().ToString();
  EXPECT_EQ(ctrl.committed_bytes(), 60);
  ctrl.Release(*waited);
}

TEST(AdmissionTest, OversizedBudgetRunsAloneInsteadOfStarving) {
  AdmissionConfig config;
  config.commit_limit_bytes = 100;
  AdmissionController ctrl(config);
  // A budget larger than the whole limit is admitted when nothing runs —
  // the alternative is a permanent queue.
  StatusOr<Admission> oversized = ctrl.Admit(1000, 0);
  ASSERT_TRUE(oversized.ok()) << oversized.status().ToString();
  EXPECT_EQ(ctrl.active(), 1);
  ctrl.Release(*oversized);
}

TEST(AdmissionTest, DegradeBitSetOnlyUnderTightDeadline) {
  AdmissionConfig config;
  config.degrade_below_ms = 100;
  AdmissionController ctrl(config);
  StatusOr<Admission> tight = ctrl.Admit(0, /*remaining_deadline_ms=*/50);
  ASSERT_TRUE(tight.ok());
  EXPECT_TRUE(tight->degrade_plan);
  ctrl.Release(*tight);
  StatusOr<Admission> roomy = ctrl.Admit(0, /*remaining_deadline_ms=*/500);
  ASSERT_TRUE(roomy.ok());
  EXPECT_FALSE(roomy->degrade_plan);
  ctrl.Release(*roomy);
  StatusOr<Admission> none = ctrl.Admit(0, /*remaining_deadline_ms=*/0);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->degrade_plan);
  ctrl.Release(*none);
}

TEST(AdmissionTest, DrainRejectsArrivalsAndWakesWaiters) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  AdmissionController ctrl(config);
  StatusOr<Admission> holder = ctrl.Admit(0, 0);
  ASSERT_TRUE(holder.ok());
  StatusOr<Admission> waited = Status::Internal("not yet");
  std::thread waiter([&] { waited = ctrl.Admit(0, 0); });
  while (ctrl.queued() != 1) std::this_thread::yield();

  ctrl.BeginDrain();
  waiter.join();
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kUnavailable);

  StatusOr<Admission> arrival = ctrl.Admit(0, 0);
  ASSERT_FALSE(arrival.ok());
  EXPECT_EQ(arrival.status().code(), StatusCode::kUnavailable);

  // Already-admitted work keeps its slot until it releases; WaitIdle is
  // the drain barrier.
  EXPECT_EQ(ctrl.active(), 1);
  std::thread idler([&] { ctrl.WaitIdle(); });
  ctrl.Release(*holder);
  idler.join();
  EXPECT_EQ(ctrl.active(), 0);
}

// FIFO under churn: when several waiters queue, a freed slot goes to the
// longest waiter; a middle waiter abandoning the queue (deadline) must
// not wedge the head. Regression guard for the ticket-set design.
TEST(AdmissionTest, FifoSurvivesMiddleWaiterTimeout) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  AdmissionController ctrl(config);
  StatusOr<Admission> holder = ctrl.Admit(0, 0);
  ASSERT_TRUE(holder.ok());

  StatusOr<Admission> first = Status::Internal("not yet");
  std::thread first_waiter([&] { first = ctrl.Admit(0, 0); });
  while (ctrl.queued() != 1) std::this_thread::yield();
  // Second waiter times out from the middle of the queue.
  StatusOr<Admission> middle = ctrl.Admit(0, /*remaining_deadline_ms=*/50);
  ASSERT_FALSE(middle.ok());
  // The first waiter must still be admittable.
  ctrl.Release(*holder);
  first_waiter.join();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ctrl.Release(*first);
  EXPECT_EQ(ctrl.active(), 0);
  EXPECT_EQ(ctrl.queued(), 0);
}

}  // namespace
}  // namespace eca
