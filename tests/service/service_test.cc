// End-to-end service behavior (the PR's acceptance contract): (a) a query
// that queues behind a saturated slot still returns byte-identical
// results, (b) overload sheds with a clean kResourceExhausted, (c) a
// drain cancels in-flight queries with a clean kCancelled and leaves the
// global tracker at zero, (d) the startup sweep reclaims orphaned spill
// directories — each observable through the service.* metrics.
//
// ServiceState tests run Handle() in process; drain and fault tests run
// the real EcadServer over a unix socket.

#include <gtest/gtest.h>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "algebra/plan_parser.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "eca/optimizer.h"
#include "expr/pred_parser.h"
#include "service/server.h"
#include "service/session.h"
#include "service/wire.h"
#include "storage/csv.h"
#include "testing/fault_injection.h"
#include "testing/random_data.h"

namespace eca {
namespace {

namespace fs = std::filesystem;

Database TestData(int rels, int rows) {
  Rng rng(12345);
  RandomDataOptions opts;
  opts.min_rows = rows;
  opts.max_rows = rows;
  opts.empty_prob = 0;
  Database db;
  for (int i = 0; i < rels; ++i) db.Add(RandomRelation(rng, i, opts));
  return db;
}

WireMessage QueryMessage(bool with_rows = true) {
  WireMessage msg;
  msg.type = "QUERY";
  msg.Add("plan", "(R0 join[p01] (R1 join[p12] R2))");
  msg.Add("pred", "p01=R0.a = R1.a");
  msg.Add("pred", "p12=R1.b = R2.b");
  if (with_rows) msg.AddInt("rows", 1);
  return msg;
}

// The solo oracle: the same query optimized and executed outside the
// service, rendered with the same deterministic .tbl encoding the wire
// carries.
std::string SoloResult(const Database& db, bool sizes_only = false) {
  std::map<std::string, PredRef> preds;
  std::string error;
  preds["p01"] = ParsePredicate("R0.a = R1.a", "p01", &error);
  preds["p12"] = ParsePredicate("R1.b = R2.b", "p12", &error);
  PlanPtr plan = ParsePlan("(R0 join[p01] (R1 join[p12] R2))", preds,
                           &error);
  EXPECT_NE(plan, nullptr) << error;
  Optimizer opt;
  auto best = sizes_only ? opt.OptimizeSizesOnly(*plan, db)
                         : opt.Optimize(*plan, db);
  EXPECT_NE(best.plan, nullptr);
  return RelationToTbl(opt.Execute(*best.plan, db));
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().counter(name)->value();
}

// -------------------------------------------------------------------
// In-process ServiceState tests.

TEST(ServiceStateTest, PingAndMetricsAndUnknownType) {
  Database db = TestData(2, 8);
  ServiceState state(&db, ServiceOptions{});
  WireMessage ping;
  ping.type = "PING";
  EXPECT_EQ(state.Handle(ping).type, "PONG");

  WireMessage metrics;
  metrics.type = "METRICS";
  WireMessage scraped = state.Handle(metrics);
  EXPECT_EQ(scraped.type, "METRICS");
  const std::string* json = scraped.Find("json");
  ASSERT_NE(json, nullptr);
  EXPECT_NE(json->find("service.requests"), std::string::npos);

  WireMessage bogus;
  bogus.type = "NOPE";
  WireMessage err = state.Handle(bogus);
  EXPECT_EQ(err.type, "ERROR");
  EXPECT_EQ(*err.Find("status"), "INVALID_ARGUMENT");
}

TEST(ServiceStateTest, MalformedQueriesFailWithoutAdmission) {
  Database db = TestData(2, 8);
  ServiceState state(&db, ServiceOptions{});
  const int64_t admitted_before = CounterValue("service.admitted");

  WireMessage no_plan;
  no_plan.type = "QUERY";
  EXPECT_EQ(*state.Handle(no_plan).Find("status"), "INVALID_ARGUMENT");

  WireMessage bad_pred = QueryMessage();
  bad_pred.fields[1].second = "p01=R0.a @@ R1.a";
  EXPECT_EQ(*state.Handle(bad_pred).Find("status"), "INVALID_ARGUMENT");

  WireMessage bad_rel = QueryMessage();
  bad_rel.fields[0].second = "(R0 join[p01] R9)";
  EXPECT_EQ(*state.Handle(bad_rel).Find("status"), "INVALID_ARGUMENT");

  WireMessage bad_int = QueryMessage();
  bad_int.Add("timeout_ms", "soon");
  EXPECT_EQ(*state.Handle(bad_int).Find("status"), "INVALID_ARGUMENT");

  // None of these consumed an admission slot.
  EXPECT_EQ(CounterValue("service.admitted"), admitted_before);
  EXPECT_EQ(state.admission().active(), 0);
}

// Acceptance (a): a query that has to queue behind a busy slot completes
// with results byte-identical to a solo run, and the wait is visible in
// queue_wait_ms and service.queued.
TEST(ServiceStateTest, QueuedQueryReturnsByteIdenticalResults) {
  Database db = TestData(3, 48);
  const std::string solo = SoloResult(db);

  ServiceOptions options;
  options.admission.max_concurrent = 1;
  ServiceState state(&db, options);

  const int64_t admitted_before = CounterValue("service.admitted");
  const int64_t queued_before = CounterValue("service.queued");

  // Saturate the only slot, forcing the real query to queue.
  StatusOr<Admission> hold = state.admission().Admit(0, 0);
  ASSERT_TRUE(hold.ok());

  WireMessage response;
  std::thread client([&] { response = state.Handle(QueryMessage()); });
  while (state.admission().queued() != 1) std::this_thread::yield();
  state.admission().Release(*hold);
  client.join();

  ASSERT_EQ(response.type, "RESULT")
      << (response.Find("message") != nullptr ? *response.Find("message")
                                              : "");
  ASSERT_NE(response.Find("data"), nullptr);
  EXPECT_EQ(*response.Find("data"), solo)
      << "service result must be byte-identical to the solo run";
  EXPECT_EQ(*response.Find("degraded"), "0");
  EXPECT_EQ(CounterValue("service.admitted"), admitted_before + 2);
  EXPECT_EQ(CounterValue("service.queued"), queued_before + 1);
  EXPECT_EQ(state.admission().active(), 0);
  EXPECT_EQ(state.root_tracker().used(), 0);
}

// Acceptance (b): saturation past the queue bound sheds with a clean
// kResourceExhausted and bumps service.shed.
TEST(ServiceStateTest, OverloadShedsWithResourceExhausted) {
  Database db = TestData(3, 16);
  ServiceOptions options;
  options.admission.max_concurrent = 1;
  options.admission.max_queue = 0;
  ServiceState state(&db, options);

  const int64_t shed_before = CounterValue("service.shed");
  StatusOr<Admission> hold = state.admission().Admit(0, 0);
  ASSERT_TRUE(hold.ok());

  WireMessage response = state.Handle(QueryMessage());
  EXPECT_EQ(response.type, "ERROR");
  EXPECT_EQ(*response.Find("status"), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(CounterValue("service.shed"), shed_before + 1);
  state.admission().Release(*hold);

  // The service recovered: the same query succeeds once the load is gone.
  EXPECT_EQ(state.Handle(QueryMessage()).type, "RESULT");
  EXPECT_EQ(state.root_tracker().used(), 0);
}

// A deadline the estimated runtime cannot fit is rejected before wasting
// queue time (early kResourceExhausted).
TEST(ServiceStateTest, HopelessDeadlineRejectedEarly) {
  Database db = TestData(3, 16);
  ServiceOptions options;
  options.admission.max_concurrent = 1;
  options.admission.est_run_ms = 10000;
  ServiceState state(&db, options);

  const int64_t rejected_before = CounterValue("service.deadline_rejected");
  StatusOr<Admission> hold = state.admission().Admit(0, 0);
  ASSERT_TRUE(hold.ok());
  WireMessage request = QueryMessage();
  request.AddInt("timeout_ms", 50);
  WireMessage response = state.Handle(request);
  EXPECT_EQ(response.type, "ERROR");
  EXPECT_EQ(*response.Find("status"), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(CounterValue("service.deadline_rejected"), rejected_before + 1);
  state.admission().Release(*hold);
}

// The degraded-mode contract: a deadline below degrade_below_ms plans
// sizes-only, the response carries degraded=1 plus the trigger, and the
// result is still correct (the fallback changes the join order, never
// the answer).
TEST(ServiceStateTest, TightDeadlineDegradesPlanningNotResults) {
  Database db = TestData(3, 48);
  // The oracle runs the sizes-only planner too: the fallback may pick a
  // different join order than the full search (permuting row order), so
  // the service bytes are pinned against a solo run of the same mode.
  const std::string solo = SoloResult(db, /*sizes_only=*/true);

  ServiceOptions options;
  options.admission.degrade_below_ms = 60000;
  ServiceState state(&db, options);

  const int64_t degraded_before = CounterValue("service.degraded");
  WireMessage request = QueryMessage();
  request.AddInt("timeout_ms", 30000);  // below the degrade threshold,
                                        // roomy enough to finish
  WireMessage response = state.Handle(request);
  ASSERT_EQ(response.type, "RESULT")
      << (response.Find("message") != nullptr ? *response.Find("message")
                                              : "");
  EXPECT_EQ(*response.Find("degraded"), "1");
  ASSERT_NE(response.Find("trigger"), nullptr);
  EXPECT_EQ(*response.Find("trigger"), "sizes-only-fallback");
  ASSERT_NE(response.Find("data"), nullptr);
  EXPECT_EQ(*response.Find("data"), solo)
      << "degraded planning must not change results";
  EXPECT_EQ(CounterValue("service.degraded"), degraded_before + 1);
}

// -------------------------------------------------------------------
// Full-server tests over a real unix socket.

#ifndef _WIN32

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() /
          (name + "-" + std::to_string(::getpid())))
      .string();
}

StatusOr<int> ConnectTo(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect failed");
  }
  return fd;
}

TEST(EcadServerTest, ServesQueriesOverTheSocket) {
  Database db = TestData(3, 48);
  const std::string solo = SoloResult(db);
  ServerConfig config;
  config.socket_path = TempPath("ecad-test-basic");
  EcadServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<int> fd = ConnectTo(config.socket_path);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  StatusOr<WireMessage> response = RoundTrip(*fd, QueryMessage());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->type, "RESULT");
  EXPECT_EQ(*response->Find("data"), solo);

  // The connection is reusable: a second request on the same fd.
  WireMessage ping;
  ping.type = "PING";
  StatusOr<WireMessage> pong = RoundTrip(*fd, ping);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, "PONG");
  ::close(*fd);

  server.Stop();
  EXPECT_EQ(server.state().root_tracker().used(), 0);
}

// Acceptance (d): the startup sweep reclaims spill directories orphaned
// by a crashed process before serving anything.
TEST(EcadServerTest, StartupSweepReclaimsOrphanedSpillDirs) {
  Database db = TestData(2, 8);
  const std::string spill_base = TempPath("ecad-test-spill");
  fs::remove_all(spill_base);
  fs::create_directories(spill_base);
  const std::string orphan = spill_base + "/eca-q2000000000-4";
  fs::create_directories(orphan);
  {
    std::ofstream out(orphan + "/partition-3.bin");
    out << "rows from a crashed ecad";
  }

  ServerConfig config;
  config.socket_path = TempPath("ecad-test-sweep");
  config.service.spill_dir = spill_base;
  EcadServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.swept_spill_dirs(), 1);
  EXPECT_FALSE(fs::exists(orphan));
  server.Stop();
  fs::remove_all(spill_base);
}

// Acceptance (c): SIGTERM-style drain — Stop() while a query is
// mid-execution cancels it; the client receives a clean kCancelled
// response, service.drained counts it, and the global tracker is zero.
TEST(EcadServerTest, DrainCancelsInFlightQueryCleanly) {
  // Big enough that the join reliably runs for seconds on one core: the
  // drain lands mid-execution.
  Database db = TestData(2, 4000);
  ServerConfig config;
  config.socket_path = TempPath("ecad-test-drain");
  config.service.client_mem_limit_bytes = int64_t{4} << 30;
  EcadServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());

  const int64_t drained_before = CounterValue("service.drained");

  WireMessage request;
  request.type = "QUERY";
  request.Add("plan", "(R0 join[p01] R1)");
  request.Add("pred", "p01=R0.a = R1.a");
  StatusOr<WireMessage> response = Status::Internal("not yet");
  std::thread client([&] {
    StatusOr<int> fd = ConnectTo(config.socket_path);
    ASSERT_TRUE(fd.ok());
    response = RoundTrip(*fd, request);
    ::close(*fd);
  });

  // Wait until the query holds its admission slot (it is optimizing or
  // executing), then drain.
  auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.state().admission().active() == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::yield();
  }
  ASSERT_EQ(server.state().admission().active(), 1);
  server.Stop();
  client.join();

  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, "ERROR");
  EXPECT_EQ(*response->Find("status"), "CANCELLED")
      << *response->Find("message");
  EXPECT_EQ(CounterValue("service.drained"), drained_before + 1);
  EXPECT_EQ(server.state().root_tracker().used(), 0);
  EXPECT_TRUE(server.state().admission().draining());

  // After the drain the socket is gone: clients fail over, they do not
  // hang.
  EXPECT_FALSE(ConnectTo(config.socket_path).ok());
}

// Satellite: a session whose response write fails (kServiceWrite) must
// not leak a single tracker byte — the query fully unwound before the
// frame ever hit the socket.
TEST(EcadServerTest, WriteFaultLeaksNoTrackerBytes) {
  Database db = TestData(3, 32);
  ServerConfig config;
  config.socket_path = TempPath("ecad-test-wfault");
  config.fault_write_skip = 0;  // every response write fails
  EcadServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<int> fd = ConnectTo(config.socket_path);
  ASSERT_TRUE(fd.ok());
  StatusOr<WireMessage> response = RoundTrip(*fd, QueryMessage());
  ::close(*fd);
  // The query ran; its response frame was dropped mid-stream.
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable)
      << response.status().ToString();

  // The session died, the query did not leak.
  auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.state().admission().active() != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server.state().admission().active(), 0);
  EXPECT_EQ(server.state().root_tracker().used(), 0);
  server.Stop();
  EXPECT_EQ(server.state().root_tracker().used(), 0);
}

// An accept-time connection drop (kServiceAccept) hits exactly one
// connection; the next connect succeeds, which is what the client's
// retry loop leans on.
TEST(EcadServerTest, AcceptFaultDropsOneConnectionThenRecovers) {
  Database db = TestData(2, 8);
  ServerConfig config;
  config.socket_path = TempPath("ecad-test-afault");
  config.fault_accept_skip = 0;  // drop the first accepted connection
  EcadServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());

  const int64_t faults_before = CounterValue("service.accept_faults");
  WireMessage ping;
  ping.type = "PING";

  // First connection: accepted then immediately dropped by the fault.
  {
    StatusOr<int> fd = ConnectTo(config.socket_path);
    ASSERT_TRUE(fd.ok());
    StatusOr<WireMessage> response = RoundTrip(*fd, ping);
    ::close(*fd);
    EXPECT_FALSE(response.ok());
  }
  EXPECT_EQ(CounterValue("service.accept_faults"), faults_before + 1);

  // Retry: served normally.
  {
    StatusOr<int> fd = ConnectTo(config.socket_path);
    ASSERT_TRUE(fd.ok());
    StatusOr<WireMessage> response = RoundTrip(*fd, ping);
    ::close(*fd);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->type, "PONG");
  }
  server.Stop();
}

#endif  // _WIN32

}  // namespace
}  // namespace eca
