// Crash-safe spill layout (storage/spill_file.h): per-query
// subdirectories named after the owning pid, lazy creation, RAII removal
// by ~QueryContext, and the startup sweep that reclaims directories
// orphaned by crashed processes — without ever touching a live process's
// files.

#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <filesystem>
#include <fstream>
#include <string>

#include "exec/query_context.h"
#include "storage/spill_file.h"

namespace eca {
namespace {

namespace fs = std::filesystem;

// A pid no live Linux process can have (kernel PID_MAX_LIMIT is 2^22).
constexpr long long kDeadPid = 2000000000;

class SpillSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (fs::temp_directory_path() /
             ("eca-sweep-test-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(base_, ec);
  }

  std::string MakeDir(const std::string& name, bool with_file = true) {
    fs::path dir = fs::path(base_) / name;
    fs::create_directories(dir);
    if (with_file) {
      std::ofstream out((dir / "spill-0.bin").string());
      out << "orphaned spill payload";
    }
    return dir.string();
  }

  std::string base_;
};

TEST_F(SpillSweepTest, SubdirNamesCarryTheOwningPid) {
  std::string a = QuerySpillSubdir(base_);
  std::string b = QuerySpillSubdir(base_);
  EXPECT_NE(a, b);  // per-query sequence numbers
  std::string expected_prefix =
      (fs::path(base_) / ("eca-q" + std::to_string(::getpid()) + "-"))
          .string();
  EXPECT_EQ(a.compare(0, expected_prefix.size(), expected_prefix), 0)
      << a << " vs " << expected_prefix;
  // The subdirectory is named, not created: creation is lazy (most
  // queries never spill).
  EXPECT_FALSE(fs::exists(a));
}

TEST_F(SpillSweepTest, SweepReclaimsDeadPidDirsOnly) {
  std::string dead =
      MakeDir("eca-q" + std::to_string(kDeadPid) + "-0");
  std::string dead2 =
      MakeDir("eca-q" + std::to_string(kDeadPid) + "-17");
  std::string live =
      MakeDir("eca-q" + std::to_string(::getpid()) + "-3");
  std::string unrelated = MakeDir("not-a-spill-dir");
  std::string malformed = MakeDir("eca-qxyz-1");
  std::string loose_file = (fs::path(base_) / "eca-q99.txt").string();
  {
    std::ofstream out(loose_file);
    out << "loose";
  }

  EXPECT_EQ(SweepOrphanQuerySpillDirs(base_), 2);

  EXPECT_FALSE(fs::exists(dead));
  EXPECT_FALSE(fs::exists(dead2));
  EXPECT_TRUE(fs::exists(live)) << "own pid is alive: must not be swept";
  EXPECT_TRUE(fs::exists(unrelated));
  EXPECT_TRUE(fs::exists(malformed));
  EXPECT_TRUE(fs::exists(loose_file));

  // Idempotent: nothing left to reclaim.
  EXPECT_EQ(SweepOrphanQuerySpillDirs(base_), 0);
}

TEST_F(SpillSweepTest, SweepOfMissingBaseIsANoOp) {
  EXPECT_EQ(SweepOrphanQuerySpillDirs(
                (fs::path(base_) / "does-not-exist").string()),
            0);
}

TEST_F(SpillSweepTest, QueryContextRemovesItsSubdirOnDestruction) {
  std::string subdir;
  {
    QueryContext::Limits limits;
    limits.spill_dir = base_;
    QueryContext ctx(limits);
    subdir = ctx.spill_dir();
    ASSERT_FALSE(subdir.empty());
    // Simulate the first spill: SpillDir creates the directory lazily.
    fs::create_directories(subdir);
    std::ofstream out((fs::path(subdir) / "run-0.bin").string());
    out << "spilled rows";
  }
  EXPECT_FALSE(fs::exists(subdir))
      << "~QueryContext must remove the per-query spill subdirectory";
  EXPECT_TRUE(fs::exists(base_)) << "the shared base must survive";
}

TEST_F(SpillSweepTest, UnconfiguredContextHasNoSpillSubdir) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.spill_dir().empty());
}

}  // namespace
}  // namespace eca
