// Client-side retry helpers (service/wire.h): the retryable-status
// class, the deterministic backoff schedule, and — over real unix
// sockets — the connect-time failures a client sees while the daemon is
// down or restarting (ECONNREFUSED, missing socket file, reset before a
// response). ecaclient builds its whole retry loop out of these, so a
// daemon kill -9'd by the chaos harness looks like a transient blip to
// well-behaved clients.

#include <gtest/gtest.h>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "common/status.h"
#include "service/wire.h"

namespace eca {
namespace {

namespace fs = std::filesystem;

TEST(WireRetry, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryableWireStatus(Status::Unavailable("daemon restart")));
  EXPECT_FALSE(IsRetryableWireStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableWireStatus(Status::InvalidArgument("bad plan")));
  EXPECT_FALSE(IsRetryableWireStatus(Status::ResourceExhausted("shed")));
  EXPECT_FALSE(IsRetryableWireStatus(Status::Cancelled("drain")));
  EXPECT_FALSE(IsRetryableWireStatus(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsRetryableWireStatus(Status::Internal("bug")));
  EXPECT_FALSE(IsRetryableWireStatus(Status::DataLoss("torn")));
}

TEST(WireRetry, BackoffDoublesFromFiftyMsAndCaps) {
  // Base schedule: 50, 100, 200, 400, 800, 1600, 1600, ... capped at
  // 2000 including jitter headroom; jitter adds [0, 25).
  int64_t prev_base = 0;
  for (int64_t attempt = 1; attempt <= 10; ++attempt) {
    int64_t ms = RetryBackoffMs(attempt, /*salt=*/7);
    int64_t shift = attempt - 1 < 5 ? attempt - 1 : 5;
    int64_t base = std::min<int64_t>(50ll << shift, 2000);
    EXPECT_GE(ms, base) << "attempt " << attempt;
    EXPECT_LT(ms, base + 25) << "attempt " << attempt;
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
}

TEST(WireRetry, BackoffIsDeterministicPerSaltAndAttempt) {
  EXPECT_EQ(RetryBackoffMs(3, 42), RetryBackoffMs(3, 42));
  // Different salts fan out (not a hard guarantee per pair, but these
  // particular values differ and pin the mixing in place).
  bool any_differ = false;
  for (uint64_t salt = 0; salt < 8 && !any_differ; ++salt) {
    any_differ = RetryBackoffMs(2, salt) != RetryBackoffMs(2, salt + 100);
  }
  EXPECT_TRUE(any_differ);
  // Out-of-range attempt clamps instead of shifting into the weeds.
  EXPECT_EQ(RetryBackoffMs(0, 9), RetryBackoffMs(1, 9));
}

#ifndef _WIN32

std::string TempSocketPath(const char* tag) {
  // sockaddr_un paths are short; keep them under /tmp regardless of the
  // test working directory.
  return "/tmp/eca_wire_retry_" + std::string(tag) + "_" +
         std::to_string(static_cast<long long>(::getpid())) + ".sock";
}

TEST(WireRetry, ConnectMissingSocketIsUnavailable) {
  std::string path = TempSocketPath("missing");
  fs::remove(path);
  StatusOr<int> fd = ConnectUnixSocket(path);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryableWireStatus(fd.status()));
}

TEST(WireRetry, ConnectRefusedIsUnavailable) {
  // A socket file whose owner died: bind without listen, close the fd,
  // leave the file. connect() gets ECONNREFUSED — the exact shape of a
  // daemon killed mid-restart.
  std::string path = TempSocketPath("refused");
  fs::remove(path);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  ::close(fd);

  StatusOr<int> client = ConnectUnixSocket(path);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryableWireStatus(client.status()));
  fs::remove(path);
}

TEST(WireRetry, BadPathIsNotRetryable) {
  StatusOr<int> empty = ConnectUnixSocket("");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(IsRetryableWireStatus(empty.status()));

  StatusOr<int> monster = ConnectUnixSocket(std::string(4096, 'x'));
  ASSERT_FALSE(monster.ok());
  EXPECT_EQ(monster.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireRetry, ResetBeforeResponseIsUnavailable) {
  // Server accepts, then closes without answering — what a client sees
  // when the daemon is SIGKILLed between accept and response. RoundTrip
  // must map it to the retryable class, not hang or crash.
  std::string path = TempSocketPath("reset");
  fs::remove(path);
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  std::thread server([listen_fd] {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn >= 0) ::close(conn);
  });

  StatusOr<int> client = ConnectUnixSocket(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  WireMessage ping;
  ping.type = "PING";
  StatusOr<WireMessage> response = RoundTrip(*client, ping);
  ::close(*client);
  server.join();
  ::close(listen_fd);
  fs::remove(path);

  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryableWireStatus(response.status()));
}

TEST(WireRetry, PeerGoneMidWriteIsUnavailableNotSigpipe) {
  // socketpair with the read side closed: the second write of a large
  // frame hits EPIPE. MSG_NOSIGNAL in FullWrite must turn that into
  // kUnavailable instead of killing the process.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  WireMessage big;
  big.type = "QUERY";
  big.Add("plan", std::string(1 << 20, 'x'));
  Status first = WriteFrame(fds[0], big);
  // The first write may land in the socket buffer; a second must fail.
  Status second = WriteFrame(fds[0], big);
  ::close(fds[0]);
  ASSERT_FALSE(first.ok() && second.ok());
  const Status& failed = first.ok() ? second : first;
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryableWireStatus(failed));
}

#endif  // _WIN32

}  // namespace
}  // namespace eca
