// Tests for the public Optimizer facade.

#include "eca/optimizer.h"

#include <gtest/gtest.h>

#include "enumerate/join_order.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

struct Fixture {
  Database db;
  PlanPtr query;
};

Fixture MakeFixture(int seed, int rels = 4) {
  Rng rng(static_cast<uint64_t>(seed) * 17 + 23);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = rels;
  Fixture f;
  f.db = RandomDatabase(rng, rels, dopts);
  f.query = RandomQuery(rng, qopts, dopts);
  return f;
}

TEST(OptimizerFacadeTest, OptimizeExecuteRoundTrip) {
  for (int seed = 0; seed < 8; ++seed) {
    Fixture f = MakeFixture(seed);
    Optimizer opt;
    auto best = opt.Optimize(*f.query, f.db);
    ASSERT_NE(best.plan, nullptr);
    EXPECT_GT(best.estimated_cost, 0);
    Relation direct = opt.Execute(*f.query, f.db);
    Relation optimized = opt.Execute(*best.plan, f.db);
    ExpectSameRelation(direct, optimized, "facade round trip");
  }
}

TEST(OptimizerFacadeTest, ApproachesDiffer) {
  // A double-antijoin query: TBA must keep the original ordering; ECA may
  // choose another, and Reorder() exposes the reachability difference.
  PlanPtr q = Plan::Join(
      JoinOp::kLeftAnti, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kLeftAnti, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  auto thetas = AllJoinOrderingTrees(q->leaves(), PredicateRefSets(*q));
  ASSERT_EQ(thetas.size(), 2u);

  Optimizer::Options tba_opts;
  tba_opts.approach = Optimizer::Approach::kTBA;
  Optimizer tba{tba_opts};
  Optimizer eca;
  int tba_reach = 0, eca_reach = 0;
  for (const OrderingNodePtr& theta : thetas) {
    if (tba.Reorder(*q, *theta)) ++tba_reach;
    if (eca.Reorder(*q, *theta)) ++eca_reach;
  }
  EXPECT_EQ(tba_reach, 1);
  EXPECT_EQ(eca_reach, 2);
}

TEST(OptimizerFacadeTest, ExplainIncludesPlanCostAndSql) {
  Fixture f = MakeFixture(3, 3);
  Optimizer opt;
  std::string basic = opt.Explain(*f.query, f.db);
  EXPECT_NE(basic.find("plan:"), std::string::npos);
  EXPECT_NE(basic.find("estimated cost"), std::string::npos);
  EXPECT_EQ(basic.find("SQL:"), std::string::npos);

  SqlOptions sql;
  sql.table_names = {"t0", "t1", "t2"};
  std::string with_sql = opt.Explain(*f.query, f.db, &sql);
  EXPECT_NE(with_sql.find("SQL:"), std::string::npos);
  EXPECT_NE(with_sql.find("FROM t0"), std::string::npos);
}

TEST(OptimizerFacadeTest, JoinPreferenceRespected) {
  Fixture f = MakeFixture(5, 3);
  Optimizer hash;
  Optimizer::Options smj_opts;
  smj_opts.join_preference = Executor::JoinPreference::kSortMerge;
  Optimizer smj{smj_opts};
  Relation a = hash.Execute(*f.query, f.db);
  Relation b = smj.Execute(*f.query, f.db);
  ExpectSameRelation(a, b, "hash vs sort-merge engine profiles");
}

}  // namespace
}  // namespace eca
