// Tests for the validating Optimizer entry points: malformed user input
// must come back as Status errors, never aborts.

#include <gtest/gtest.h>

#include "algebra/plan_parser.h"
#include "algebra/validate.h"
#include "eca/optimizer.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

Database SmallDb(int rels) {
  Rng rng(99);
  RandomDataOptions opts;
  opts.min_rows = 2;
  opts.max_rows = 4;
  opts.empty_prob = 0;
  return RandomDatabase(rng, rels, opts);
}

TEST(CheckedApiTest, ValidQueryOptimizesAndExecutes) {
  Database db = SmallDb(3);
  PlanPtr q = Plan::Join(
      JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
      Plan::Join(JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)),
      Plan::Leaf(0));
  Optimizer opt;
  auto best = opt.OptimizeChecked(*q, db);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  auto direct = opt.ExecuteChecked(*q, db);
  auto optimized = opt.ExecuteChecked(*best->plan, db);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  ExpectSameRelation(*direct, *optimized, "checked round trip");
}

TEST(CheckedApiTest, LeafOutsideDatabaseIsInvalidArgument) {
  Database db = SmallDb(2);
  // R7 does not exist in a 2-table database.
  PlanPtr q = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 7, "a", "p07"),
                         Plan::Leaf(0), Plan::Leaf(7));
  Optimizer opt;
  auto best = opt.OptimizeChecked(*q, db);
  ASSERT_FALSE(best.ok());
  EXPECT_EQ(best.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(best.status().message().find("rel_id 7"), std::string::npos)
      << best.status().ToString();
}

TEST(CheckedApiTest, DuplicateLeafIsInvalidArgument) {
  Database db = SmallDb(2);
  PlanPtr q = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 0, "b", "p00"),
                         Plan::Leaf(0), Plan::Leaf(0));
  Optimizer opt;
  auto best = opt.OptimizeChecked(*q, db);
  ASSERT_FALSE(best.ok());
  EXPECT_NE(best.status().message().find("more than one leaf"),
            std::string::npos)
      << best.status().ToString();
}

TEST(CheckedApiTest, UnknownColumnIsReportedWithCandidates) {
  Database db = SmallDb(2);
  // Column "zz" exists in no relation; execution would abort on the
  // unresolved column, so validation must catch it first.
  PlanPtr q = Plan::Join(JoinOp::kInner, EquiJoin(0, "zz", 1, "a", "p01"),
                         Plan::Leaf(0), Plan::Leaf(1));
  Optimizer opt;
  auto best = opt.OptimizeChecked(*q, db);
  ASSERT_FALSE(best.ok());
  EXPECT_NE(best.status().message().find("R0.zz"), std::string::npos)
      << best.status().ToString();
  auto run = opt.ExecuteChecked(*q, db);
  EXPECT_FALSE(run.ok());
}

TEST(CheckedApiTest, HiddenPredicateReferenceIsInvalidArgument) {
  Database db = SmallDb(3);
  // p02 references R2, which is not visible under this join.
  PlanPtr q = Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 2, "a", "p02"),
                         Plan::Leaf(0), Plan::Leaf(1));
  Optimizer opt;
  EXPECT_FALSE(opt.OptimizeChecked(*q, db).ok());
}

TEST(CheckedApiTest, ParseApproachNamesAndErrors) {
  EXPECT_EQ(*Optimizer::ParseApproach("eca"), Optimizer::Approach::kECA);
  EXPECT_EQ(*Optimizer::ParseApproach("TBA"), Optimizer::Approach::kTBA);
  EXPECT_EQ(*Optimizer::ParseApproach("Cba"), Optimizer::Approach::kCBA);
  auto bad = Optimizer::ParseApproach("postgres");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("postgres"), std::string::npos);
  EXPECT_STREQ(Optimizer::ApproachName(Optimizer::Approach::kECA), "ECA");
}

// A parsed-then-validated pipeline, as tools use it: garbage text fails at
// the parser, semantically-broken plans fail at validation, and neither
// path aborts the process.
TEST(CheckedApiTest, ParserAndValidatorComposeWithoutAborting) {
  Database db = SmallDb(2);
  std::map<std::string, PredRef> preds;
  preds["p01"] = EquiJoin(0, "a", 1, "a", "p01");
  std::string error;
  EXPECT_EQ(ParsePlan("(R0 join[p01", preds, &error), nullptr);
  EXPECT_FALSE(error.empty());

  PlanPtr dup = ParsePlan("(R0 join[p01] R0)", preds, &error);
  if (dup != nullptr) {
    Optimizer opt;
    EXPECT_FALSE(opt.OptimizeChecked(*dup, db).ok());
  }
}

}  // namespace
}  // namespace eca
