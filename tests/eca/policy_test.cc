// The planner policy layer (eca/policy.h, docs/planner-policies.md):
// flag parsing, the policy/degradation distinction (a deliberate policy
// choice is never flagged degraded), the greedy max_join_size gate, and
// result identity of every policy against the DP enumerator.

#include <gtest/gtest.h>

#include <string>

#include "eca/optimizer.h"
#include "eca/policy.h"
#include "sqlgen/workload.h"

#include "../test_util.h"

namespace eca {
namespace {

TEST(PlanPolicyTest, ParseAcceptsCanonicalAndAliasSpellings) {
  EXPECT_EQ(*ParsePlanPolicy("dp"), PlanPolicy::kDp);
  EXPECT_EQ(*ParsePlanPolicy("DP"), PlanPolicy::kDp);
  EXPECT_EQ(*ParsePlanPolicy("sizes-only"), PlanPolicy::kSizesOnly);
  EXPECT_EQ(*ParsePlanPolicy("sizes_only"), PlanPolicy::kSizesOnly);
  EXPECT_EQ(*ParsePlanPolicy("Greedy"), PlanPolicy::kGreedy);
  EXPECT_EQ(*ParsePlanPolicy("semijoin"), PlanPolicy::kSemijoin);
}

TEST(PlanPolicyTest, ParseRejectsUnknownNamesWithTheValidList) {
  StatusOr<PlanPolicy> bad = ParsePlanPolicy("cascades");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("sizes-only"), std::string::npos)
      << bad.status().message();
}

TEST(PlanPolicyTest, NamesRoundTripThroughParse) {
  for (PlanPolicy p : {PlanPolicy::kDp, PlanPolicy::kSizesOnly,
                       PlanPolicy::kGreedy, PlanPolicy::kSemijoin}) {
    EXPECT_EQ(*ParsePlanPolicy(PlanPolicyName(p)), p);
  }
}

Workload MakeWorkload(Topology topo, int rels, uint64_t seed) {
  WorkloadOptions wopts;
  wopts.topology = topo;
  wopts.num_rels = rels;
  wopts.seed = seed;
  return GenerateWorkload(wopts);
}

// Every policy must produce a plan whose result is the unoptimized
// query's multiset — the same oracle ecafuzz --policy runs at scale.
TEST(PolicyOptimizeTest, EveryPolicyMatchesTheUnoptimizedQuery) {
  for (Topology topo :
       {Topology::kChain, Topology::kStar, Topology::kClique}) {
    Workload w = MakeWorkload(topo, 5, 21);
    Relation direct = Optimizer().Execute(*w.query, w.db);
    for (PlanPolicy policy : {PlanPolicy::kDp, PlanPolicy::kSizesOnly,
                              PlanPolicy::kGreedy, PlanPolicy::kSemijoin}) {
      Optimizer::Options opts;
      opts.plan_policy = policy;
      Optimizer opt(opts);
      auto best = opt.Optimize(*w.query, w.db);
      ASSERT_NE(best.plan, nullptr);
      Relation got = opt.Execute(*best.plan, w.db);
      ExpectSameRelation(direct, got,
                         std::string(TopologyName(topo)) + " under " +
                             PlanPolicyName(policy));
    }
  }
}

// A deliberately chosen cheap policy is NOT a degradation: the degraded
// flag stays reserved for budget/deadline/admission fallbacks, so the
// service's alerting doesn't fire on every sizes-only request.
TEST(PolicyOptimizeTest, DeliberatePoliciesAreNotFlaggedDegraded) {
  Workload w = MakeWorkload(Topology::kChain, 6, 3);
  for (PlanPolicy policy : {PlanPolicy::kSizesOnly, PlanPolicy::kGreedy,
                            PlanPolicy::kSemijoin}) {
    Optimizer::Options opts;
    opts.plan_policy = policy;
    Optimizer opt(opts);
    auto best = opt.Optimize(*w.query, w.db);
    EXPECT_FALSE(best.stats.degraded) << PlanPolicyName(policy);
    EXPECT_EQ(best.stats.trigger, BudgetTrigger::kNone)
        << PlanPolicyName(policy);
    EXPECT_EQ(best.provenance.policy, PlanPolicyName(policy));
  }
}

// In contrast, OptimizeSizesOnly is the degraded path (deadline/admission
// fallback): same ordering, but flagged, with the fallback trigger.
TEST(PolicyOptimizeTest, OptimizeSizesOnlyIsTheDegradedPath) {
  Workload w = MakeWorkload(Topology::kChain, 5, 4);
  Optimizer opt;
  auto best = opt.OptimizeSizesOnly(*w.query, w.db);
  EXPECT_TRUE(best.stats.degraded);
  EXPECT_EQ(best.stats.trigger, BudgetTrigger::kSizesOnlyFallback);
  EXPECT_EQ(best.provenance.policy, "sizes-only");
  Relation direct = opt.Execute(*w.query, w.db);
  Relation got = opt.Execute(*best.plan, w.db);
  ExpectSameRelation(direct, got, "degraded sizes-only");
}

// The greedy gate: at or below max_join_size the policy defers to DP (and
// says so in the provenance note); above it the greedy order is used.
TEST(PolicyOptimizeTest, GreedyGateFiresOnlyAboveMaxJoinSize) {
  Workload w = MakeWorkload(Topology::kStar, 6, 7);
  Optimizer::Options opts;
  opts.plan_policy = PlanPolicy::kGreedy;

  opts.max_join_size = 10;  // 6 relations: within the gate, DP runs
  auto deferred = Optimizer(opts).Optimize(*w.query, w.db);
  EXPECT_NE(deferred.provenance.policy_note.find("dp ran"),
            std::string::npos)
      << deferred.provenance.policy_note;

  opts.max_join_size = 4;  // 6 relations: above the gate, greedy runs
  auto greedy = Optimizer(opts).Optimize(*w.query, w.db);
  EXPECT_TRUE(greedy.provenance.policy_note.empty())
      << greedy.provenance.policy_note;
  EXPECT_FALSE(greedy.stats.degraded);

  Relation direct = Optimizer().Execute(*w.query, w.db);
  ExpectSameRelation(direct, Optimizer(opts).Execute(*greedy.plan, w.db),
                     "greedy order");
}

// Sizes-only and greedy must cost no enumeration at all: the plans come
// from orderings, not from a DP search.
TEST(PolicyOptimizeTest, CheapPoliciesSkipEnumeration) {
  Workload w = MakeWorkload(Topology::kStar, 8, 2);
  for (PlanPolicy policy : {PlanPolicy::kSizesOnly, PlanPolicy::kGreedy}) {
    Optimizer::Options opts;
    opts.plan_policy = policy;
    opts.max_join_size = 4;
    auto best = Optimizer(opts).Optimize(*w.query, w.db);
    EXPECT_EQ(best.stats.subplan_calls, 0) << PlanPolicyName(policy);
  }
}

// The explain/provenance surface carries the policy line.
TEST(PolicyOptimizeTest, ProvenanceRendersThePolicy) {
  Workload w = MakeWorkload(Topology::kChain, 4, 1);
  Optimizer::Options opts;
  opts.plan_policy = PlanPolicy::kSemijoin;
  Optimizer opt(opts);
  auto best = opt.Optimize(*w.query, w.db);
  std::string text = best.provenance.ToString();
  EXPECT_NE(text.find("policy: semijoin"), std::string::npos) << text;
  EXPECT_NE(text.find("yannakakis"), std::string::npos) << text;
}

}  // namespace
}  // namespace eca
