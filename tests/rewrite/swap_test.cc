// Randomized soundness tests for the compensated swap primitive
// (SwapAdjacentJoins / SwapUp): for every operator pair and configuration,
// a successful swap must produce an equivalent plan with the moved join's
// predicate at the top join. This machine-verifies the compensated
// reorderings of the paper's Table 3 in their general form.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "rewrite/rules.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

const JoinOp kOps[] = {
    JoinOp::kInner,     JoinOp::kLeftOuter, JoinOp::kRightOuter,
    JoinOp::kLeftSemi,  JoinOp::kLeftAnti,  JoinOp::kRightSemi,
    JoinOp::kRightAnti, JoinOp::kFullOuter,
};
constexpr int kNumOps = 8;

// Builds a two-join pattern. With m_on_left: (R0 opm[pm] R1) opp[pp] R2
// where pp connects R2 with R0 or R1 (whichever is visible). With m on the
// right: R0 opp[pp] (R1 opm[pm] R2).
PlanPtr BuildPattern(JoinOp op_m, JoinOp op_p, bool m_on_left,
                     bool pp_touches_inner, Rng& rng,
                     const RandomDataOptions& opts) {
  if (m_on_left) {
    PlanPtr m = Plan::Join(
        op_m,
        RandomJoinPredicate(rng, RelSet::Single(0), RelSet::Single(1), opts,
                            "pm"),
        Plan::Leaf(0), Plan::Leaf(1));
    RelSet visible = m->output_rels();
    // pp connects R2 to a visible relation of m's output.
    int anchor;
    if (pp_touches_inner && visible.Contains(1)) {
      anchor = 1;
    } else {
      anchor = visible.Min();
    }
    PredRef pp = RandomJoinPredicate(rng, RelSet::Single(anchor),
                                     RelSet::Single(2), opts, "pp");
    return Plan::Join(op_p, pp, std::move(m), Plan::Leaf(2));
  }
  PlanPtr m = Plan::Join(
      op_m,
      RandomJoinPredicate(rng, RelSet::Single(1), RelSet::Single(2), opts,
                          "pm"),
      Plan::Leaf(1), Plan::Leaf(2));
  RelSet visible = m->output_rels();
  int anchor;
  if (pp_touches_inner && visible.Contains(1)) {
    anchor = 1;
  } else if (visible.Contains(2)) {
    anchor = 2;
  } else {
    anchor = visible.Min();
  }
  PredRef pp = RandomJoinPredicate(rng, RelSet::Single(0),
                                   RelSet::Single(anchor), opts, "pp");
  return Plan::Join(op_p, pp, Plan::Leaf(0), std::move(m));
}

class SwapEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(SwapEquivalence, SwappedPlanEvaluatesIdentically) {
  auto [mi, pi, m_left, touch_inner, seed] = GetParam();
  JoinOp op_m = kOps[mi], op_p = kOps[pi];
  Rng rng(static_cast<uint64_t>(seed) * 60013 + mi * 691 + pi * 83 +
          m_left * 11 + touch_inner);
  RandomDataOptions opts;
  opts.max_rows = 6;
  Database db = RandomDatabase(rng, 3, opts);
  PlanPtr plan = BuildPattern(op_m, op_p, m_left != 0, touch_inner != 0, rng,
                              opts);
  PlanPtr original = plan->Clone();
  RewriteContext ctx;
  PlanPtr swapped =
      SwapAdjacentJoins(plan->Clone(), m_left != 0, &ctx);
  if (swapped == nullptr) return;  // unsupported combination; fine
  ExpectPlansEquivalent(*original, *swapped, db,
                        "compensated swap must preserve semantics");
  // The moved predicate pm (possibly folded as "pm&...") is at the top join.
  const Plan* top = swapped.get();
  while (top->is_comp()) top = top->child();
  ASSERT_TRUE(top->is_join());
  ASSERT_NE(top->pred(), nullptr);
  EXPECT_NE(top->pred()->DisplayName().find("pm"), std::string::npos)
      << "risen join must carry the moved predicate; got "
      << top->pred()->DisplayName() << "\n"
      << swapped->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, SwapEquivalence,
    ::testing::Combine(::testing::Range(0, kNumOps),
                       ::testing::Range(0, kNumOps), ::testing::Range(0, 2),
                       ::testing::Range(0, 2), ::testing::Range(0, 4)));

// Coverage accounting: within the no-full-outerjoin class every pattern
// must be swappable (this is the heart of Theorem 3.2(a): complete join
// reorderability for C_J without full outerjoins).
TEST(SwapCoverage, CompleteForNoFullOuterPatterns) {
  const JoinOp no_foj[] = {
      JoinOp::kInner,    JoinOp::kLeftOuter, JoinOp::kRightOuter,
      JoinOp::kLeftSemi, JoinOp::kLeftAnti,  JoinOp::kRightSemi,
      JoinOp::kRightAnti,
  };
  RandomDataOptions opts;
  int failures = 0;
  std::string detail;
  for (JoinOp op_m : no_foj) {
    for (JoinOp op_p : no_foj) {
      for (int m_left = 0; m_left < 2; ++m_left) {
        for (int touch_inner = 0; touch_inner < 2; ++touch_inner) {
          Rng rng(static_cast<uint64_t>(static_cast<int>(op_m)) * 977 +
                  static_cast<uint64_t>(static_cast<int>(op_p)) * 31 +
                  static_cast<uint64_t>(m_left * 2 + touch_inner));
          PlanPtr plan = BuildPattern(op_m, op_p, m_left != 0,
                                      touch_inner != 0, rng, opts);
          // Skip degenerate duplicates: when the inner relation is hidden,
          // touch_inner falls back to the same anchor as !touch_inner.
          PlanPtr swapped = SwapAdjacentJoins(plan->Clone(), m_left != 0,
                                              nullptr);
          if (swapped == nullptr) {
            ++failures;
            detail += std::string(JoinOpName(op_m)) + " under " +
                      JoinOpName(op_p) + (m_left ? " (m left" : " (m right") +
                      (touch_inner ? ", pp->inner)" : ", pp->outer)") + "\n" +
                      plan->ToString() + "\n";
          }
        }
      }
    }
  }
  EXPECT_EQ(failures, 0) << "unswappable patterns:\n" << detail;
}

// SwapUp moves a join one level up through interposed compensation
// operators, per Algorithm 3.
TEST(SwapUpTest, MovesThroughCompStack) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 41 + 7);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    PredRef p01 = EquiJoin(0, "a", 1, "a", "p01");
    PredRef p02 = EquiJoin(0, "b", 2, "b", "p02");
    // beta(pi{R0,R1}(...)) between the joins.
    PlanPtr inner =
        Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0), Plan::Leaf(1));
    Plan* m = inner.get();
    PlanPtr stack = Plan::Comp(
        CompOp::Beta(),
        Plan::Comp(CompOp::Project(RelSet::FirstN(2)), std::move(inner)));
    PlanPtr root =
        Plan::Join(JoinOp::kInner, p02, std::move(stack), Plan::Leaf(2));
    PlanPtr original = root->Clone();
    RewriteContext ctx;
    Plan* risen = SwapUp(root, m, &ctx);
    ASSERT_NE(risen, nullptr);
    ExpectPlansEquivalent(*original, *root, db);
    EXPECT_EQ(risen->pred()->DisplayName(), "p01");
    // p01 is now the topmost join.
    std::vector<Plan*> joins;
    CollectJoins(root.get(), &joins);
    ASSERT_GE(joins.size(), 2u);
    EXPECT_EQ(joins[0], risen);
  }
}

TEST(SwapUpTest, ReturnsNullAtRoot) {
  PredRef p01 = EquiJoin(0, "a", 1, "a", "p01");
  PlanPtr root =
      Plan::Join(JoinOp::kInner, p01, Plan::Leaf(0), Plan::Leaf(1));
  Plan* m = root.get();
  EXPECT_EQ(SwapUp(root, m, nullptr), nullptr);
}

}  // namespace
}  // namespace eca
