// Step-by-step reproductions of the paper's worked examples: Example 4.3
// (postponed pruning), Example 4.5 (gamma-based reordering), Example 4.6
// (why gamma* is needed), and Example 4.8 / Figure 4 (pulling compensation
// operators through a larger plan).

#include <gtest/gtest.h>

#include "enumerate/join_order.h"
#include "enumerate/realize.h"
#include "exec/executor.h"
#include "rewrite/rules.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

// Example 4.3: Q = (R1 laj R2) join-ish R3 — expressing the antijoin via
// Equation 9 postpones the pruning (gamma) so the joins can reorder.
TEST(PaperExamples, Example43PostponedPruning) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 43);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    // (R0 laj[p01] R1) join[p02] R2
    PlanPtr q = Plan::Join(
        JoinOp::kInner, EquiJoin(0, "b", 2, "b", "p02"),
        Plan::Join(JoinOp::kLeftAnti, EquiJoin(0, "a", 1, "a", "p01"),
                   Plan::Leaf(0), Plan::Leaf(1)),
        Plan::Leaf(2));
    // Reorder so that R0 joins R2 first; the antijoin's pruning must be
    // postponed past the join.
    for (const OrderingNodePtr& theta :
         AllJoinOrderingTrees(q->leaves(), PredicateRefSets(*q))) {
      if (theta->Key() != "((R0,R2),R1)") continue;
      PlanPtr plan = RealizeOrdering(*q, *theta, SwapPolicy::kECA);
      ASSERT_NE(plan, nullptr);
      ExpectPlansEquivalent(*q, *plan, db, "Example 4.3");
      // Note: for this shape l-asscom(laj, join) happens to be valid, so
      // the machinery may reorder without compensation (the paper's
      // Equation 9 route is an alternative derivation); the essential
      // property is that the ordering is reachable and correct.
    }
  }
}

// Example 4.5: Q = (R1 laj R2) loj R3 reordered so R1-R2... the paper's
// variant reorders Q = R1 laj (R2 ... ) with the join of R1 and R2 first,
// using Equation 9, Equation 10 and Table 2 Rule 2, then associativity.
TEST(PaperExamples, Example45GammaReordering) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 45);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    // Q = (R0 laj[p01] R1) loj[p02] R2 -> join R0,R2 first.
    PlanPtr q = Plan::Join(
        JoinOp::kLeftOuter, EquiJoin(0, "b", 2, "b", "p02"),
        Plan::Join(JoinOp::kLeftAnti, EquiJoin(0, "a", 1, "a", "p01"),
                   Plan::Leaf(0), Plan::Leaf(1)),
        Plan::Leaf(2));
    for (const OrderingNodePtr& theta :
         AllJoinOrderingTrees(q->leaves(), PredicateRefSets(*q))) {
      if (theta->Key() != "((R0,R2),R1)") continue;
      PlanPtr plan = RealizeOrdering(*q, *theta, SwapPolicy::kECA);
      ASSERT_NE(plan, nullptr);
      ExpectPlansEquivalent(*q, *plan, db, "Example 4.5");
    }
  }
}

// Example 4.6: Q = R1 loj (R2 laj R3) — pushing the outerjoin below the
// gamma is unsound (it would delete preserved R1 tuples); the machinery
// must use gamma* instead. This is exactly Rule 18, whose shape we check.
TEST(PaperExamples, Example46GammaStarNeeded) {
  Rng rng(46);
  RandomDataOptions opts;
  Database db = RandomDatabase(rng, 3, opts);
  PlanPtr q = Plan::Join(
      JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kLeftAnti, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  for (const OrderingNodePtr& theta :
       AllJoinOrderingTrees(q->leaves(), PredicateRefSets(*q))) {
    if (theta->Key() != "((R0,R1),R2)") continue;
    PlanPtr plan = RealizeOrdering(*q, *theta, SwapPolicy::kECA);
    ASSERT_NE(plan, nullptr);
    ExpectPlansEquivalent(*q, *plan, db, "Example 4.6 / Rule 18");
    // The plan must use gamma* (a plain gamma would lose R0 tuples).
    EXPECT_NE(plan->ToInlineString().find("gamma*"), std::string::npos)
        << plan->ToString();
  }
}

// Example 4.8 / Figure 4: a five-relation plan where the compensations of
// one swap must be pulled above another join to enable the next swap.
TEST(PaperExamples, Example48FiveRelationPullUp) {
  Rng rng(48);
  RandomDataOptions opts;
  opts.max_rows = 5;
  Database db = RandomDatabase(rng, 5, opts);
  // Q_a-like: (R0 loj[p03] (R1 join[p12] R2)) join[p04] ... build a chain
  // that forces compensations between two swapped joins:
  // Q = (R0 loj[p01] (R1 join[p12] R2)) join[p03] (R3 join[p34] R4)
  PlanPtr q = Plan::Join(
      JoinOp::kInner, EquiJoin(0, "b", 3, "b", "p03"),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0),
                 Plan::Join(JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
                            Plan::Leaf(1), Plan::Leaf(2))),
      Plan::Join(JoinOp::kInner, EquiJoin(3, "a", 4, "a", "p34"),
                 Plan::Leaf(3), Plan::Leaf(4)));
  auto thetas = AllJoinOrderingTrees(q->leaves(), PredicateRefSets(*q));
  ASSERT_GT(thetas.size(), 4u);
  int realized = 0;
  for (const OrderingNodePtr& theta : thetas) {
    PlanPtr plan = RealizeOrdering(*q, *theta, SwapPolicy::kECA);
    ASSERT_NE(plan, nullptr) << "unreachable: " << theta->Key();
    ++realized;
    ExpectPlansEquivalent(*q, *plan, db, "Example 4.8 " + theta->Key());
  }
  EXPECT_EQ(realized, static_cast<int>(thetas.size()));
}

// Equation 10: projections commute with joins that only need surviving
// attributes.
TEST(PaperExamples, Equation10ProjectionPullUp) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 10);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    PredRef p01 = EquiJoin(0, "a", 1, "a", "p01");
    PredRef p02 = EquiJoin(0, "b", 2, "b", "p02");
    PlanPtr lhs = Plan::Join(
        JoinOp::kLeftOuter, p02,
        Plan::Comp(CompOp::Project(RelSet::Single(0)),
                   Plan::Join(JoinOp::kInner, p01, Plan::Leaf(0),
                              Plan::Leaf(1))),
        Plan::Leaf(2));
    PlanPtr rhs = Plan::Comp(
        CompOp::Project(RelSet::Single(0).Union(RelSet::Single(2))),
        Plan::Join(JoinOp::kLeftOuter, p02,
                   Plan::Join(JoinOp::kInner, p01, Plan::Leaf(0),
                              Plan::Leaf(1)),
                   Plan::Leaf(2)));
    ExpectPlansEquivalent(*lhs, *rhs, db, "Equation 10");
  }
}

}  // namespace
}  // namespace eca
