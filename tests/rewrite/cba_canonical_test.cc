// Tests for the full CBA canonical form (Section 2.2): any query over
// {join, loj, roj, cross} equals beta(lambda-chain(outer cross products)).

#include <gtest/gtest.h>

#include "rewrite/paper_rules.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

class CbaCanonical : public ::testing::TestWithParam<int> {};

TEST_P(CbaCanonical, EquivalentOnRandomOuterJoinQueries) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 127 + 3);
  RandomDataOptions dopts;
  dopts.empty_prob = 0.2;  // the outer-cross semantics matter when empty
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  qopts.allow_semi_anti = false;  // CBA's scope
  qopts.allow_full_outer = false;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  PlanPtr canonical = CbaCanonicalForm(*query);
  ASSERT_NE(canonical, nullptr);
  ExpectPlansEquivalent(*query, *canonical, db,
                        "CBA canonical form (Section 2.2)");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbaCanonical, ::testing::Range(0, 25));

TEST(CbaCanonicalTest, ShapeIsBetaLambdaChainOverOuterCrosses) {
  PlanPtr q = Plan::Join(
      JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Join(JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
                 Plan::Leaf(1), Plan::Leaf(2)));
  PlanPtr canonical = CbaCanonicalForm(*q);
  ASSERT_NE(canonical, nullptr);
  // beta on top.
  ASSERT_TRUE(canonical->is_comp());
  EXPECT_EQ(canonical->comp().kind, CompOp::Kind::kBeta);
  // Then the outer join's lambda (bottom-up order: p01 above p12).
  const Plan* l1 = canonical->child();
  ASSERT_EQ(l1->comp().kind, CompOp::Kind::kLambda);
  EXPECT_EQ(l1->comp().pred->DisplayName(), "p01");
  EXPECT_EQ(l1->comp().attrs, RelSet::Single(1).Union(RelSet::Single(2)));
  const Plan* l2 = l1->child();
  ASSERT_EQ(l2->comp().kind, CompOp::Kind::kLambda);
  EXPECT_EQ(l2->comp().pred->DisplayName(), "p12");
  // Below: full-outer TRUE joins (the outer cartesian products).
  const Plan* cross = l2->child();
  ASSERT_TRUE(cross->is_join());
  EXPECT_EQ(cross->op(), JoinOp::kFullOuter);
}

TEST(CbaCanonicalTest, RefusesAntijoins) {
  PlanPtr q = Plan::Join(JoinOp::kLeftAnti, EquiJoin(0, "a", 1, "a"),
                         Plan::Leaf(0), Plan::Leaf(1));
  EXPECT_EQ(CbaCanonicalForm(*q), nullptr);
}

}  // namespace
}  // namespace eca
