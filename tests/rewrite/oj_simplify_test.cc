// Tests for the null-rejection outerjoin simplification pass.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "rewrite/oj_simplify.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

TEST(OjSimplifyTest, InnerAboveKillsLeftOuter) {
  // (R0 loj[p01] R1) join[p12] R2 with p12 referencing R1: padded rows
  // cannot satisfy p12, so the outerjoin strengthens to an inner join.
  PlanPtr plan = Plan::Join(
      JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
  EXPECT_EQ(SimplifyOuterJoins(plan.get()), 1);
  EXPECT_EQ(plan->left()->op(), JoinOp::kInner);
}

TEST(OjSimplifyTest, PredicateOnPreservedSideDoesNotSimplify) {
  // p12 references R0 (the preserved side): padded rows survive, so the
  // outerjoin must stay.
  PlanPtr plan = Plan::Join(
      JoinOp::kInner, EquiJoin(0, "b", 2, "b", "p02"),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
  EXPECT_EQ(SimplifyOuterJoins(plan.get()), 0);
  EXPECT_EQ(plan->left()->op(), JoinOp::kLeftOuter);
}

TEST(OjSimplifyTest, FullOuterDegradesStepwise) {
  // (R0 foj R1) join[p12 refs R1] R2: R0-padded rows (NULL R0) survive p12
  // but R1-padded rows do not -> foj becomes roj... i.e. only the padding
  // of R1's side is killed, keeping R1-preserving semantics.
  PlanPtr plan = Plan::Join(
      JoinOp::kInner, EquiJoin(1, "b", 2, "b", "p12"),
      Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
  EXPECT_EQ(SimplifyOuterJoins(plan.get()), 1);
  EXPECT_EQ(plan->left()->op(), JoinOp::kRightOuter);

  // With predicates on both sides it goes all the way to inner.
  PlanPtr both = Plan::Join(
      JoinOp::kInner,
      Predicate::And({EquiJoin(1, "b", 2, "b"), EquiJoin(0, "b", 2, "a")}),
      Plan::Join(JoinOp::kFullOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
  EXPECT_EQ(SimplifyOuterJoins(both.get()), 1);
  EXPECT_EQ(both->left()->op(), JoinOp::kInner);
}

TEST(OjSimplifyTest, NullTolerantPredicateBlocksSimplification) {
  PredRef tolerant = Predicate::Or(
      {EquiJoin(1, "b", 2, "b"), Predicate::IsNull(Col(1, "b"))});
  PlanPtr plan = Plan::Join(
      JoinOp::kInner, tolerant,
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
  EXPECT_EQ(SimplifyOuterJoins(plan.get()), 0);
}

TEST(OjSimplifyTest, AntijoinKeepsPaddedRows) {
  // (R0 loj R1) laj[p12 refs R1] R2: padded rows survive the antijoin
  // (they have no match), so no simplification.
  PlanPtr plan = Plan::Join(
      JoinOp::kLeftAnti, EquiJoin(1, "b", 2, "b", "p12"),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
  EXPECT_EQ(SimplifyOuterJoins(plan.get()), 0);
}

TEST(OjSimplifyTest, SemijoinFiltersLikeInner) {
  PlanPtr plan = Plan::Join(
      JoinOp::kLeftSemi, EquiJoin(1, "b", 2, "b", "p12"),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)),
      Plan::Leaf(2));
  EXPECT_EQ(SimplifyOuterJoins(plan.get()), 1);
  EXPECT_EQ(plan->left()->op(), JoinOp::kInner);
}

TEST(OjSimplifyTest, FixpointCascades) {
  // join[p23 refs R2] above loj above loj: both outerjoins die.
  PlanPtr plan = Plan::Join(
      JoinOp::kInner, EquiJoin(2, "b", 3, "b", "p23"),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(1, "b", 2, "a", "p12"),
                 Plan::Leaf(0),
                 Plan::Join(JoinOp::kLeftOuter,
                            EquiJoin(1, "a", 2, "b", "x"),
                            Plan::Leaf(1), Plan::Leaf(2))),
      Plan::Leaf(3));
  // p23 kills padding of the inner operand chain transitively.
  int changed = SimplifyOuterJoins(plan.get());
  EXPECT_GE(changed, 1);
}

// The pass must never change semantics.
class OjSimplifyRandomized : public ::testing::TestWithParam<int> {};

TEST_P(OjSimplifyRandomized, PreservesSemantics) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 29 + 3);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  qopts.allow_full_outer = true;
  qopts.tolerant_pred_prob = seed % 3 == 0 ? 0.4 : 0.0;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  PlanPtr simplified = query->Clone();
  SimplifyOuterJoins(simplified.get());
  ExpectPlansEquivalent(*query, *simplified, db, "outerjoin simplification");
}

INSTANTIATE_TEST_SUITE_P(Seeds, OjSimplifyRandomized,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace eca
