// Tests for the compensation cleanup pass.

#include "rewrite/comp_simplify.h"

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "exec/executor.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

#include "../test_util.h"

namespace eca {
namespace {

TEST(CompSimplifyTest, RemovesIdentityProjection) {
  PlanPtr plan = Plan::Comp(
      CompOp::Project(RelSet::FirstN(2)),
      Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p"),
                 Plan::Leaf(0), Plan::Leaf(1)));
  EXPECT_EQ(SimplifyCompensations(&plan), 1);
  EXPECT_TRUE(plan->is_join());

  // A narrowing projection stays.
  PlanPtr narrowing = Plan::Comp(
      CompOp::Project(RelSet::Single(0)),
      Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p"),
                 Plan::Leaf(0), Plan::Leaf(1)));
  EXPECT_EQ(SimplifyCompensations(&narrowing), 0);
  EXPECT_TRUE(narrowing->is_comp());
}

TEST(CompSimplifyTest, CollapsesBetaChains) {
  PlanPtr plan = Plan::Comp(
      CompOp::Beta(),
      Plan::Comp(CompOp::Beta(),
                 Plan::Comp(CompOp::Lambda(EquiJoin(0, "a", 1, "a", "p"),
                                           RelSet::Single(1)),
                            Plan::Join(JoinOp::kLeftOuter,
                                       EquiJoin(0, "a", 1, "a", "p"),
                                       Plan::Leaf(0), Plan::Leaf(1)))));
  // The outer beta sits on a beta (clean) -> removed; the inner one guards
  // a lambda and must stay.
  EXPECT_EQ(SimplifyCompensations(&plan), 1);
  ASSERT_TRUE(plan->is_comp());
  EXPECT_EQ(plan->comp().kind, CompOp::Kind::kBeta);
  EXPECT_EQ(plan->child()->comp().kind, CompOp::Kind::kLambda);
}

TEST(CompSimplifyTest, RemovesBetaOverCleanJoins) {
  PlanPtr plan = Plan::Comp(
      CompOp::Beta(),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "p"),
                 Plan::Leaf(0), Plan::Leaf(1)));
  EXPECT_EQ(SimplifyCompensations(&plan), 1);
  EXPECT_TRUE(plan->is_join());
}

TEST(CompSimplifyTest, RemovesTrueLambdaAndDuplicateGamma) {
  PlanPtr base = Plan::Join(JoinOp::kLeftOuter,
                            EquiJoin(0, "a", 1, "a", "p"), Plan::Leaf(0),
                            Plan::Leaf(1));
  PlanPtr plan = Plan::Comp(
      CompOp::Gamma(RelSet::Single(1)),
      Plan::Comp(CompOp::Gamma(RelSet::Single(1)),
                 Plan::Comp(CompOp::Lambda(Predicate::ConstBool(true),
                                           RelSet::Single(1)),
                            std::move(base))));
  EXPECT_EQ(SimplifyCompensations(&plan), 2);
  ASSERT_TRUE(plan->is_comp());
  EXPECT_EQ(plan->comp().kind, CompOp::Kind::kGamma);
  EXPECT_TRUE(plan->child()->is_join());
}

class CompSimplifyRandomized : public ::testing::TestWithParam<int> {};

TEST_P(CompSimplifyRandomized, PreservesOptimizedPlanSemantics) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 401 + 13);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  CostModel cost = CostModel::FromDatabase(db);
  EnumeratorOptions opts;
  TopDownEnumerator e(&cost, opts);
  auto result = e.Optimize(*query);
  ASSERT_NE(result.plan, nullptr);

  PlanPtr cleaned = result.plan->Clone();
  SimplifyCompensations(&cleaned);
  ExpectPlansEquivalent(*result.plan, *cleaned, db,
                        "compensation cleanup");
  ExpectPlansEquivalent(*query, *cleaned, db, "cleanup vs query");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompSimplifyRandomized,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace eca
