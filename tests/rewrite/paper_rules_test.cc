// Machine verification of the paper's named rules in their closed forms:
// Table 3 (rules 14-25, reconstructed per Appendix A), the CBA canonical
// forms of Section 2.2 (Equations 1-2 plus the beta properties), and
// Table 4 (lambda swap rules 26-27). Each rule is executed on randomized
// databases; LHS and RHS must agree on every trial.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "rewrite/paper_rules.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

class Table3Rules
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Table3Rules, ClosedFormHolds) {
  auto [rule_index, seed] = GetParam();
  const PaperRule& rule = PaperTable3Rules()[static_cast<size_t>(rule_index)];
  Rng rng(static_cast<uint64_t>(seed) * 2551 +
          static_cast<uint64_t>(rule.number) * 17);
  RandomDataOptions opts;
  opts.max_rows = 7;
  Database db = RandomDatabase(rng, 3, opts);
  PredRef pa = RandomJoinPredicate(rng, RelSet::Single(rule.endpoints[0]),
                                   RelSet::Single(rule.endpoints[1]), opts,
                                   "pa");
  PredRef pb = RandomJoinPredicate(rng, RelSet::Single(rule.endpoints[2]),
                                   RelSet::Single(rule.endpoints[3]), opts,
                                   "pb");
  PlanPtr lhs = rule.lhs(pa, pb);
  PlanPtr rhs = rule.rhs(pa, pb);
  ExpectPlansEquivalent(
      *lhs, *rhs, db,
      "Rule " + std::to_string(rule.number) + " " + rule.transform);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, Table3Rules,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Range(0, 25)));

TEST(Table3Rules, TwelveRulesRegistered) {
  EXPECT_EQ(PaperTable3Rules().size(), 12u);
  EXPECT_EQ(PaperTable3Rules().front().number, 14);
  EXPECT_EQ(PaperTable3Rules().back().number, 25);
}

// --------------------------------------------------------------------------
// CBA canonical forms (Section 2.2)
// --------------------------------------------------------------------------

TEST(CbaRules, InnerJoinCanonicalForm) {
  for (int seed = 0; seed < 25; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 3 + 7);
    RandomDataOptions opts;
    opts.empty_prob = 0.25;  // the empty-operand edge needs the all-NULL
                             // spurious-tuple convention; exercise it
    Database db = RandomDatabase(rng, 2, opts);
    PredRef p = RandomJoinPredicate(rng, RelSet::Single(0),
                                    RelSet::Single(1), opts, "p01");
    PlanPtr join =
        Plan::Join(JoinOp::kInner, p, Plan::Leaf(0), Plan::Leaf(1));
    PlanPtr canonical = CbaInnerJoinCanonical(p, Plan::Leaf(0),
                                              Plan::Leaf(1));
    ExpectPlansEquivalent(*join, *canonical, db, "CBA Equation 1");
  }
}

TEST(CbaRules, LeftOuterJoinCanonicalForm) {
  for (int seed = 0; seed < 25; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 11 + 7);
    RandomDataOptions opts;
    opts.empty_prob = 0.25;
    Database db = RandomDatabase(rng, 2, opts);
    PredRef p = RandomJoinPredicate(rng, RelSet::Single(0),
                                    RelSet::Single(1), opts, "p01");
    PlanPtr join =
        Plan::Join(JoinOp::kLeftOuter, p, Plan::Leaf(0), Plan::Leaf(1));
    PlanPtr canonical = CbaLeftOuterJoinCanonical(p, Plan::Leaf(0),
                                                  Plan::Leaf(1));
    ExpectPlansEquivalent(*join, *canonical, db, "CBA Equation 2");
  }
}

TEST(CbaRules, OuterCrossPreservesNonEmptyOperands) {
  Relation left = MakeRelation({{0, "a", DataType::kInt64}}, {{I(1)}});
  Relation empty{Schema({{1, "b", DataType::kInt64}})};
  Database db;
  db.Add(left);
  db.Add(empty);
  PlanPtr cross = OuterCross(Plan::Leaf(0), Plan::Leaf(1));
  Executor ex;
  Relation out = ex.Execute(*cross, db);
  // The plain cartesian product would be empty; the outer variant keeps
  // R0's tuple padded with NULLs.
  ASSERT_EQ(out.NumRows(), 1);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 1);
  EXPECT_TRUE(out.rows()[0][1].is_null());
}

TEST(CbaRules, BetaIdempotent) {
  // CBA Equation 3: beta(beta(R)) = beta(R).
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    RandomDataOptions opts;
    opts.null_prob = 0.5;
    Relation r = RandomRelation(rng, 0, opts);
    Relation once = EvalBeta(r);
    ExpectSameRelation(once, EvalBeta(once));
  }
}

// --------------------------------------------------------------------------
// Table 4: lambda swap rules
// --------------------------------------------------------------------------

PlanPtr LambdaChain(PredRef p1, RelSet m, PredRef p2, RelSet n) {
  PlanPtr base = Plan::Join(
      JoinOp::kLeftOuter, EquiJoin(0, "a", 1, "a", "j01"),
      Plan::Join(JoinOp::kLeftOuter, EquiJoin(0, "b", 2, "b", "j02"),
                 Plan::Leaf(0), Plan::Leaf(2)),
      Plan::Leaf(1));
  return Plan::Comp(CompOp::Lambda(std::move(p1), m),
                    Plan::Comp(CompOp::Lambda(std::move(p2), n),
                               std::move(base)));
}

TEST(LambdaSwapRules, Rule26IndependentLambdasCommute) {
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 5 + 3);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    // p1 references {R0,R1}, nullifies M={R1}; p2 references {R0,R2},
    // nullifies N={R2}: independent.
    PredRef p1 = EquiJoin(0, "a", 1, "a", "p1");
    PredRef p2 = EquiJoin(0, "b", 2, "b", "p2");
    PlanPtr chain = LambdaChain(p1, RelSet::Single(1), p2, RelSet::Single(2));
    PlanPtr original = chain->Clone();
    PlanPtr swapped = SwapLambdaPair(std::move(chain));
    ASSERT_NE(swapped, nullptr);
    ExpectPlansEquivalent(*original, *swapped, db, "Table 4 Rule 26");
    // Shape: the p2 lambda is now outermost with unchanged attrs.
    EXPECT_EQ(swapped->comp().pred->DisplayName(), "p2");
    EXPECT_EQ(swapped->comp().attrs, RelSet::Single(2));
  }
}

TEST(LambdaSwapRules, Rule27DependentLambdaWidens) {
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 31 + 1);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    // p1 references N = {R2} (the inner lambda's attrs): dependent case.
    PredRef p1 = EquiJoin(1, "a", 2, "a", "p1");
    PredRef p2 = EquiJoin(0, "b", 2, "b", "p2");
    PlanPtr chain = LambdaChain(p1, RelSet::Single(1), p2, RelSet::Single(2));
    PlanPtr original = chain->Clone();
    PlanPtr swapped = SwapLambdaPair(std::move(chain));
    ASSERT_NE(swapped, nullptr);
    ExpectPlansEquivalent(*original, *swapped, db, "Table 4 Rule 27");
    // Shape: outermost lambda is p2 over N+M = {R1,R2}.
    EXPECT_EQ(swapped->comp().pred->DisplayName(), "p2");
    EXPECT_EQ(swapped->comp().attrs,
              RelSet::Single(1).Union(RelSet::Single(2)));
  }
}

TEST(LambdaSwapRules, RejectsMutualDependence) {
  // p2 references M: neither rule applies.
  PredRef p1 = EquiJoin(1, "a", 2, "a", "p1");
  PredRef p2 = EquiJoin(1, "b", 2, "b", "p2");
  PlanPtr chain = LambdaChain(p1, RelSet::Single(1), p2, RelSet::Single(2));
  EXPECT_EQ(SwapLambdaPair(std::move(chain)), nullptr);
}

}  // namespace
}  // namespace eca
