// Randomized soundness tests for the compensation pull-up rules
// (PullCompAboveJoin): for every comp kind x join op x side combination, the
// rewritten plan must evaluate identically to the original on randomized
// databases. These tests machine-verify the paper's Table 2 (gamma/gamma*
// interchange), Table 5 (lambda past joins) and Equation 10 (pi pull-up).

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "rewrite/rules.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

const JoinOp kJoinOps[] = {
    JoinOp::kInner,    JoinOp::kLeftOuter, JoinOp::kFullOuter,
    JoinOp::kLeftSemi, JoinOp::kLeftAnti,
};

enum CompKind {
  kCompLambda,
  kCompBeta,
  kCompGamma,
  kCompGammaStar,
  kCompProject,
  kNumCompKinds,
};

// Builds `comp(R0 loj[p01] R1)` — a realistic comp provenance: the comp
// parameters reference the nullable (R1) side as the paper's rules do.
PlanPtr BuildCompChild(CompKind kind, Rng& rng,
                       const RandomDataOptions& opts) {
  PredRef p01 = RandomJoinPredicate(rng, RelSet::Single(0), RelSet::Single(1),
                                    opts, "p01");
  PlanPtr join = Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0),
                            Plan::Leaf(1));
  switch (kind) {
    case kCompLambda:
      return Plan::Comp(CompOp::Lambda(p01, RelSet::Single(1)),
                        std::move(join));
    case kCompBeta:
      return Plan::Comp(CompOp::Beta(), std::move(join));
    case kCompGamma:
      return Plan::Comp(CompOp::Gamma(RelSet::Single(1)), std::move(join));
    case kCompGammaStar:
      return Plan::Comp(CompOp::GammaStar(RelSet::Single(1),
                                          RelSet::Single(0)),
                        std::move(join));
    case kCompProject:
      return Plan::Comp(CompOp::Project(RelSet::Single(0)), std::move(join));
    default:
      return nullptr;
  }
}

class PullRuleEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PullRuleEquivalence, PulledPlanEvaluatesIdentically) {
  auto [comp_kind, op_index, comp_left, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + comp_kind * 131 +
          op_index * 17 + comp_left);
  RandomDataOptions opts;
  opts.max_rows = 7;
  Database db = RandomDatabase(rng, 3, opts);

  PlanPtr comp_side = BuildCompChild(static_cast<CompKind>(comp_kind), rng,
                                     opts);
  // The outer predicate references R2 and (for projection-compatibility)
  // the preserved relation R0.
  PredRef p2 = RandomJoinPredicate(rng, RelSet::Single(0), RelSet::Single(2),
                                   opts, "p02");
  JoinOp op = kJoinOps[op_index];
  PlanPtr plan = comp_left
                     ? Plan::Join(op, p2, std::move(comp_side), Plan::Leaf(2))
                     : Plan::Join(op, p2, Plan::Leaf(2), std::move(comp_side));

  PlanPtr original = plan->Clone();
  RewriteContext ctx;
  bool pulled = PullCompAboveJoin(&plan, comp_left != 0, &ctx);
  if (!pulled) {
    // The rule must be failure-atomic: the plan is untouched.
    EXPECT_TRUE(PlanEquals(*original, *plan));
    return;
  }
  ExpectPlansEquivalent(*original, *plan, db,
                        "pull comp above join must preserve semantics");
  // The comp-side child of the join must no longer be a comp node.
  std::vector<Plan*> joins;
  CollectJoins(plan.get(), &joins);
  ASSERT_FALSE(joins.empty());
  Plan* top_join = joins[0];
  const Plan* child = comp_left ? top_join->left() : top_join->right();
  // After folding the comp may be gone entirely; otherwise the join child
  // on the comp side must now be the join that was under the comp (unless
  // the predicate was folded, which also splices).
  EXPECT_FALSE(child->is_comp());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PullRuleEquivalence,
    ::testing::Combine(::testing::Range(0, static_cast<int>(kNumCompKinds)),
                       ::testing::Range(0, 5), ::testing::Range(0, 2),
                       ::testing::Range(0, 10)));

// A lambda whose nullified attributes are referenced by the parent join
// must fold into the predicate (inner) or produce the beta(lambda(...))
// form (left outerjoin, preserved side) — Table 5's two rule families.
TEST(PullLambdaTest, ReferencedAttrsInnerJoinFolds) {
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 500);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    PredRef p01 = EquiJoin(0, "a", 1, "a", "p01");
    PredRef p12 = EquiJoin(1, "b", 2, "b", "p12");  // references R1 = lambda'd
    PlanPtr lam = Plan::Comp(
        CompOp::Lambda(p01, RelSet::Single(1)),
        Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0), Plan::Leaf(1)));
    PlanPtr plan =
        Plan::Join(JoinOp::kInner, p12, std::move(lam), Plan::Leaf(2));
    PlanPtr original = plan->Clone();
    ASSERT_TRUE(PullCompAboveJoin(&plan, /*comp_on_left=*/true, nullptr));
    ExpectPlansEquivalent(*original, *plan, db);
    // Folded: the top join predicate is now a conjunction, no comp added.
    EXPECT_TRUE(plan->is_join());
    EXPECT_EQ(plan->pred()->DisplayName(), "p12&p01");
  }
}

TEST(PullLambdaTest, ReferencedAttrsLeftOuterGetsBeta) {
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 900);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    PredRef p01 = EquiJoin(0, "a", 1, "a", "p01");
    PredRef p12 = EquiJoin(1, "b", 2, "b", "p12");
    PlanPtr lam = Plan::Comp(
        CompOp::Lambda(p01, RelSet::Single(1)),
        Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0), Plan::Leaf(1)));
    PlanPtr plan = Plan::Join(JoinOp::kLeftOuter, p12, std::move(lam),
                              Plan::Leaf(2));
    PlanPtr original = plan->Clone();
    ASSERT_TRUE(PullCompAboveJoin(&plan, /*comp_on_left=*/true, nullptr));
    ExpectPlansEquivalent(*original, *plan, db);
    // Shape: beta(lambda[p01, {R1,R2}](join)).
    ASSERT_TRUE(plan->is_comp());
    EXPECT_EQ(plan->comp().kind, CompOp::Kind::kBeta);
    ASSERT_TRUE(plan->child()->is_comp());
    EXPECT_EQ(plan->child()->comp().kind, CompOp::Kind::kLambda);
    EXPECT_EQ(plan->child()->comp().attrs,
              RelSet::Single(1).Union(RelSet::Single(2)));
  }
}

// Table 2 Rule 3: R2 loj[p] gamma_A(R1...) = gamma*_{A(R2)}(R2 loj[p] ...).
TEST(PullGammaTest, NullSideBecomesGammaStar) {
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 131);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    PredRef p01 = EquiJoin(0, "a", 1, "a", "p01");
    PredRef p02 = EquiJoin(2, "a", 0, "b", "p02");  // references R0, not R1
    PlanPtr gam = Plan::Comp(
        CompOp::Gamma(RelSet::Single(1)),
        Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0), Plan::Leaf(1)));
    PlanPtr plan = Plan::Join(JoinOp::kLeftOuter, p02, Plan::Leaf(2),
                              std::move(gam));
    PlanPtr original = plan->Clone();
    ASSERT_TRUE(PullCompAboveJoin(&plan, /*comp_on_left=*/false, nullptr));
    ExpectPlansEquivalent(*original, *plan, db);
    ASSERT_TRUE(plan->is_comp());
    EXPECT_EQ(plan->comp().kind, CompOp::Kind::kGammaStar);
    EXPECT_EQ(plan->comp().attrs, RelSet::Single(1));
    EXPECT_EQ(plan->comp().keep, RelSet::Single(2));
  }
}

TEST(PullBetaTest, RefusesDirtySibling) {
  // Sibling with a bare lambda on top is not beta-clean; the pull must be
  // rejected to avoid removing cross-sibling dominations.
  PredRef p01 = EquiJoin(0, "a", 1, "a", "p01");
  PredRef p23 = EquiJoin(2, "a", 3, "a", "p23");
  PredRef p02 = EquiJoin(0, "b", 2, "b", "p02");
  PlanPtr left = Plan::Comp(
      CompOp::Beta(),
      Plan::Join(JoinOp::kLeftOuter, p01, Plan::Leaf(0), Plan::Leaf(1)));
  PlanPtr right = Plan::Comp(
      CompOp::Lambda(p23, RelSet::Single(3)),
      Plan::Join(JoinOp::kLeftOuter, p23, Plan::Leaf(2), Plan::Leaf(3)));
  PlanPtr plan = Plan::Join(JoinOp::kInner, p02, std::move(left),
                            std::move(right));
  EXPECT_FALSE(PullCompAboveJoin(&plan, /*comp_on_left=*/true, nullptr));
}

TEST(PullBetaTest, ProbeSideBetaIsDropped) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 777);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 3, opts);
    PredRef p12 = EquiJoin(1, "a", 2, "a", "p12");
    PredRef p01 = EquiJoin(0, "a", 1, "b", "p01");
    PlanPtr probe = Plan::Comp(
        CompOp::Beta(),
        Plan::Join(JoinOp::kLeftOuter, p12, Plan::Leaf(1), Plan::Leaf(2)));
    PlanPtr plan = Plan::Join(JoinOp::kLeftAnti, p01, Plan::Leaf(0),
                              std::move(probe));
    PlanPtr original = plan->Clone();
    ASSERT_TRUE(PullCompAboveJoin(&plan, /*comp_on_left=*/false, nullptr));
    ExpectPlansEquivalent(*original, *plan, db);
    EXPECT_FALSE(plan->right()->is_comp());
    EXPECT_TRUE(plan->is_join());  // no comp added above either
  }
}

TEST(ExpansionTest, AntiJoinEquationNine) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 3 + 1);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 2, opts);
    PredRef p = RandomJoinPredicate(rng, RelSet::Single(0), RelSet::Single(1),
                                    opts, "p01");
    PlanPtr anti =
        Plan::Join(JoinOp::kLeftAnti, p, Plan::Leaf(0), Plan::Leaf(1));
    PlanPtr original = anti->Clone();
    PlanPtr expanded = ExpandAntiJoinNode(std::move(anti));
    ExpectPlansEquivalent(*original, *expanded, db, "Equation 9");
    // Shape: pi{R0}(gamma{R1}(R0 loj R1)).
    ASSERT_TRUE(expanded->is_comp());
    EXPECT_EQ(expanded->comp().kind, CompOp::Kind::kProject);
    EXPECT_EQ(expanded->child()->comp().kind, CompOp::Kind::kGamma);
    EXPECT_EQ(expanded->child()->child()->op(), JoinOp::kLeftOuter);
  }
}

TEST(ExpansionTest, SemiJoinBestMatchForm) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 5 + 2);
    RandomDataOptions opts;
    Database db = RandomDatabase(rng, 2, opts);
    PredRef p = RandomJoinPredicate(rng, RelSet::Single(0), RelSet::Single(1),
                                    opts, "p01");
    PlanPtr semi =
        Plan::Join(JoinOp::kLeftSemi, p, Plan::Leaf(0), Plan::Leaf(1));
    PlanPtr original = semi->Clone();
    PlanPtr expanded = ExpandSemiJoinNode(std::move(semi));
    ExpectPlansEquivalent(*original, *expanded, db, "semijoin expansion");
  }
}

TEST(ExpansionTest, RightVariantsNormalizeFirst) {
  Rng rng(99);
  RandomDataOptions opts;
  Database db = RandomDatabase(rng, 2, opts);
  PredRef p = EquiJoin(0, "a", 1, "a", "p01");
  PlanPtr anti =
      Plan::Join(JoinOp::kRightAnti, p, Plan::Leaf(0), Plan::Leaf(1));
  PlanPtr original = anti->Clone();
  PlanPtr expanded = ExpandAntiJoinNode(std::move(anti));
  ExpectPlansEquivalent(*original, *expanded, db);
}

TEST(BetaCleanTest, Classification) {
  PredRef p = EquiJoin(0, "a", 1, "a", "p01");
  PlanPtr join =
      Plan::Join(JoinOp::kLeftOuter, p, Plan::Leaf(0), Plan::Leaf(1));
  EXPECT_TRUE(IsBetaClean(*join));
  PlanPtr lam = Plan::Comp(CompOp::Lambda(p, RelSet::Single(1)),
                           join->Clone());
  EXPECT_FALSE(IsBetaClean(*lam));
  PlanPtr beta = Plan::Comp(CompOp::Beta(), std::move(lam));
  EXPECT_TRUE(IsBetaClean(*beta));
  PlanPtr proj = Plan::Comp(CompOp::Project(RelSet::Single(0)),
                            join->Clone());
  EXPECT_FALSE(IsBetaClean(*proj));
  PlanPtr gs = Plan::Comp(
      CompOp::GammaStar(RelSet::Single(1), RelSet::Single(0)), join->Clone());
  EXPECT_TRUE(IsBetaClean(*gs));
}

}  // namespace
}  // namespace eca
