#ifndef ECA_TESTS_TEST_UTIL_H_
#define ECA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/executor.h"
#include "storage/relation.h"

namespace eca {

// Asserts that two relations hold the same multiset of rows (after
// canonicalizing column order), with a readable diff on failure.
inline void ExpectSameRelation(const Relation& expected,
                               const Relation& actual,
                               const std::string& context = "") {
  Relation ce = CanonicalizeColumnOrder(expected);
  Relation ca = CanonicalizeColumnOrder(actual);
  if (!SameMultiset(ce, ca)) {
    ADD_FAILURE() << context << "\nrelations differ:\n"
                  << ExplainDifference(ce, ca) << "\nexpected:\n"
                  << ce.ToString() << "actual:\n"
                  << ca.ToString();
  }
}

// Asserts that two plans produce the same result on `db`.
inline void ExpectPlansEquivalent(const Plan& a, const Plan& b,
                                  const Database& db,
                                  const std::string& context = "") {
  Executor ea, eb;
  Relation ra = ea.Execute(a, db);
  Relation rb = eb.Execute(b, db);
  ExpectSameRelation(ra, rb,
                     context + "\nplan A:\n" + a.ToString() + "plan B:\n" +
                         b.ToString());
}

// Builds a relation from an inline spec. Columns are (rel_id, name, type);
// rows as vectors of Values.
inline Relation MakeRelation(std::vector<Column> cols,
                             std::vector<Tuple> rows) {
  return Relation(Schema(std::move(cols)), std::move(rows));
}

inline Value N() { return Value::Null(DataType::kInt64); }
inline Value I(int64_t x) { return Value::Int(x); }
inline Value S(const char* s) { return Value::Str(s); }

}  // namespace eca

#endif  // ECA_TESTS_TEST_UTIL_H_
