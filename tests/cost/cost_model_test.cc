// Tests for the cost model, cardinality estimation, and the equi-depth
// histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.h"
#include "cost/histogram.h"
#include "testing/random_data.h"

#include "../test_util.h"

namespace eca {
namespace {

Relation SequenceRelation(int rel_id, int n) {
  Relation r(Schema({{rel_id, "k", DataType::kInt64},
                     {rel_id, "v", DataType::kDouble}}));
  for (int i = 0; i < n; ++i) {
    r.Add({I(i), Value::Real(static_cast<double>(i))});
  }
  return r;
}

TEST(HistogramTest, FractionBelowIsMonotoneAndCalibrated) {
  Relation r = SequenceRelation(0, 1000);  // v uniform on [0, 999]
  EquiDepthHistogram h = EquiDepthHistogram::Build(r, 1);
  EXPECT_EQ(h.total_values(), 1000);
  EXPECT_NEAR(h.FractionBelow(500.0), 0.5, 0.05);
  EXPECT_NEAR(h.FractionBelow(100.0), 0.1, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5000.0), 1.0);
  double prev = 0;
  for (double v = 0; v <= 1000; v += 50) {
    double f = h.FractionBelow(v);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(HistogramTest, NullsAndEmpties) {
  Relation r(Schema({{0, "v", DataType::kInt64}}));
  r.Add({N()});
  r.Add({N()});
  r.Add({I(1)});
  r.Add({I(2)});
  EquiDepthHistogram h = EquiDepthHistogram::Build(r, 0);
  EXPECT_DOUBLE_EQ(h.null_fraction(), 0.5);
  EXPECT_EQ(h.total_values(), 2);

  Relation empty(Schema({{0, "v", DataType::kInt64}}));
  EquiDepthHistogram he = EquiDepthHistogram::Build(empty, 0);
  EXPECT_TRUE(he.empty());
  EXPECT_DOUBLE_EQ(he.FractionBelow(3.0), 0.5);  // uninformative default
}

TEST(CostModelTest, RangeSelectivityUsesHistogram) {
  Database db;
  db.Add(SequenceRelation(0, 1000));
  CostModel cost = CostModel::FromDatabase(db);
  // v > 900 keeps ~10%.
  PredRef p = Gt(Col(0, "v"), LitReal(900.0));
  EXPECT_NEAR(cost.Selectivity(*p), 0.1, 0.05);
  // const < col is the mirrored shape.
  PredRef q = Lt(LitReal(900.0), Col(0, "v"));
  EXPECT_NEAR(cost.Selectivity(*q), 0.1, 0.05);
  // v < 100 keeps ~10%.
  PredRef r = Lt(Col(0, "v"), LitReal(100.0));
  EXPECT_NEAR(cost.Selectivity(*r), 0.1, 0.05);
}

TEST(CostModelTest, EquiJoinSelectivity) {
  Database db;
  db.Add(SequenceRelation(0, 100));
  db.Add(SequenceRelation(1, 50));
  CostModel cost = CostModel::FromDatabase(db);
  PredRef p = EquiJoin(0, "k", 1, "k");
  // 1/max(d0, d1) = 1/100.
  EXPECT_NEAR(cost.Selectivity(*p), 0.01, 1e-9);
}

TEST(CostModelTest, CardinalitiesFollowOperatorSemantics) {
  Database db;
  db.Add(SequenceRelation(0, 100));
  db.Add(SequenceRelation(1, 50));
  CostModel cost = CostModel::FromDatabase(db);
  PredRef p = EquiJoin(0, "k", 1, "k", "p01");

  auto card = [&](JoinOp op) {
    PlanPtr plan = Plan::Join(op, p, Plan::Leaf(0), Plan::Leaf(1));
    return cost.Cardinality(*plan);
  };
  double inner = card(JoinOp::kInner);
  EXPECT_NEAR(inner, 50.0, 10.0);  // key-FK join
  // Left outer >= max(inner, |L|).
  EXPECT_GE(card(JoinOp::kLeftOuter) + 1e-9, inner);
  EXPECT_GE(card(JoinOp::kLeftOuter), 99.0);
  // Semi + anti partition the left side.
  EXPECT_NEAR(card(JoinOp::kLeftSemi) + card(JoinOp::kLeftAnti), 100.0,
              1.0);
  // Full outer >= both outer variants.
  EXPECT_GE(card(JoinOp::kFullOuter) + 1e-9, card(JoinOp::kLeftOuter));
}

TEST(CostModelTest, CompensationCosts) {
  Database db;
  db.Add(SequenceRelation(0, 1000));
  db.Add(SequenceRelation(1, 1000));
  CostModel cost = CostModel::FromDatabase(db);
  PredRef p = EquiJoin(0, "k", 1, "k", "p01");
  PlanPtr join = Plan::Join(JoinOp::kLeftOuter, p, Plan::Leaf(0),
                            Plan::Leaf(1));
  double base = cost.Cost(*join);
  // beta costs n log n on top; lambda only a scan.
  PlanPtr with_beta = Plan::Comp(CompOp::Beta(), join->Clone());
  PlanPtr with_lambda =
      Plan::Comp(CompOp::Lambda(p, RelSet::Single(1)), join->Clone());
  EXPECT_GT(cost.Cost(*with_beta), cost.Cost(*with_lambda));
  EXPECT_GT(cost.Cost(*with_lambda), base);
}

// Regression: user-supplied TableStats can report 0 distinct values (an
// all-NULL join column, or hand-built stats). 1/0 in the equi-selectivity
// poisoned every cardinality above the predicate with inf, which then made
// all plans compare equal. The divisions must clamp distinct >= 1.
TEST(CostModelTest, ZeroDistinctStaysFinite) {
  TableStats left;
  left.rows = 100;
  left.distinct["k"] = 0;  // e.g. an all-NULL column
  TableStats right;
  right.rows = 50;
  right.distinct["k"] = 0;
  CostModel cost(std::vector<TableStats>{left, right});

  PredRef join = EquiJoin(0, "k", 1, "k", "p01");
  double sel = cost.Selectivity(*join);
  EXPECT_TRUE(std::isfinite(sel)) << sel;
  EXPECT_LE(sel, 1.0);

  // Column-vs-constant equality divides by the other side's distinct count.
  PredRef vs_const = Eq(Col(0, "k"), Lit(7));
  double sel_const = cost.Selectivity(*vs_const);
  EXPECT_TRUE(std::isfinite(sel_const)) << sel_const;
  EXPECT_LE(sel_const, 1.0);

  PlanPtr plan = Plan::Join(JoinOp::kInner, join, Plan::Leaf(0),
                            Plan::Leaf(1));
  EXPECT_TRUE(std::isfinite(cost.Cardinality(*plan)));
  EXPECT_TRUE(std::isfinite(cost.Cost(*plan)));
}

// Regression: the sampled-selectivity cache was keyed by the Predicate's
// address. A CostModel outlives individual queries, and the allocator
// routinely hands a freed predicate's address to the next query's
// (different) predicate — which then got served the stale selectivity.
// Two structurally different predicates cycled through fresh allocations
// must always get their own estimates.
TEST(CostModelTest, SampleCacheSurvivesPredicateAddressReuse) {
  Database db;
  db.Add(SequenceRelation(0, 100));
  CostModel cost = CostModel::FromDatabase(db);
  for (int i = 0; i < 64; ++i) {
    // v > 1*v: never true (selectivity 0). Arith form forces the sampled
    // path, which is the one that caches.
    PredRef never = Gt(Col(0, "v"),
                       Scalar::Arith(Scalar::ArithOp::kMul, LitReal(1.0),
                                     Col(0, "v")));
    EXPECT_NEAR(cost.Selectivity(*never), 0.0, 1e-9) << "iteration " << i;
    never.reset();  // free, so the next allocation may reuse the address
    // v > 0*v: true for every sampled row but v=0.
    PredRef most = Gt(Col(0, "v"),
                      Scalar::Arith(Scalar::ArithOp::kMul, LitReal(0.0),
                                    Col(0, "v")));
    EXPECT_GT(cost.Selectivity(*most), 0.5) << "iteration " << i;
    most.reset();
  }
}

TEST(CostModelTest, NestedLoopPenalizedOverHash) {
  Database db;
  db.Add(SequenceRelation(0, 500));
  db.Add(SequenceRelation(1, 500));
  CostModel cost = CostModel::FromDatabase(db);
  PlanPtr hash = Plan::Join(JoinOp::kInner, EquiJoin(0, "k", 1, "k"),
                            Plan::Leaf(0), Plan::Leaf(1));
  PlanPtr nl = Plan::Join(JoinOp::kInner, Lt(Col(0, "k"), Col(1, "k")),
                          Plan::Leaf(0), Plan::Leaf(1));
  EXPECT_LT(cost.Cost(*hash), cost.Cost(*nl));
}

}  // namespace
}  // namespace eca
