// Tests for the metrics registry (common/metrics.h): counter/histogram
// semantics, snapshot diffing, concurrent increments, and — the contract
// the observability layer rests on — that a registry diff around one
// Executor::Execute / TopDownEnumerator::Optimize call reproduces the
// call's ExecStats / EnumeratorStats exactly.

#include "common/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include "cost/cost_model.h"
#include "enumerate/enumerator.h"
#include "exec/executor.h"
#include "gtest/gtest.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

int64_t CounterDelta(const MetricsSnapshot& diff, const std::string& name) {
  auto it = diff.counters.find(name);
  return it == diff.counters.end() ? 0 : it->second;
}

TEST(CounterTest, IncrementAndAdd) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  // Bucket 0 holds value 0; bucket k >= 1 holds [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4);
  // 48 buckets cover the whole non-negative range with no overflow
  // bucket; INT64_MAX still lands inside.
  EXPECT_LT(Histogram::BucketFor(INT64_MAX), Histogram::kNumBuckets);

  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(-7);  // negative samples clamp to 0 rather than corrupting
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 6);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.counter("test.registry.stable");
  Counter* b = reg.counter("test.registry.stable");
  EXPECT_EQ(a, b);
  Histogram* ha = reg.histogram("test.registry.stable_hist");
  Histogram* hb = reg.histogram("test.registry.stable_hist");
  EXPECT_EQ(ha, hb);
}

TEST(MetricsRegistryTest, SnapshotDiffIsolatesActivity) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.counter("test.diff.counter");
  Histogram* h = reg.histogram("test.diff.hist");
  c->Add(5);  // pre-existing activity the diff must exclude
  h->Record(100);

  MetricsSnapshot before = reg.Snapshot();
  c->Add(7);
  h->Record(3);
  h->Record(4);
  MetricsSnapshot diff = reg.Snapshot().DiffSince(before);

  EXPECT_EQ(CounterDelta(diff, "test.diff.counter"), 7);
  auto it = diff.histograms.find("test.diff.hist");
  ASSERT_NE(it, diff.histograms.end());
  EXPECT_EQ(it->second.count, 2);
  EXPECT_EQ(it->second.sum, 7);
  EXPECT_DOUBLE_EQ(it->second.Mean(), 3.5);

  // A metric untouched between the snapshots diffs to zero.
  Counter* quiet = reg.counter("test.diff.quiet");
  quiet->Add(9);
  MetricsSnapshot base2 = reg.Snapshot();
  EXPECT_EQ(CounterDelta(reg.Snapshot().DiffSince(base2), "test.diff.quiet"),
            0);
}

TEST(MetricsRegistryTest, TableAndJsonRenderActivity) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.counter("test.render.counter")->Add(3);
  reg.histogram("test.render.hist")->Record(8);
  MetricsSnapshot snap = reg.Snapshot();

  std::string table = snap.ToTable();
  EXPECT_NE(table.find("test.render.counter"), std::string::npos);
  EXPECT_NE(table.find("test.render.hist"), std::string::npos);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render.counter\":3"), std::string::npos);

  // Zero-valued entries are elided from the table (the per-approach CLI
  // delta would otherwise drown in the full catalog).
  MetricsSnapshot empty_diff = snap.DiffSince(snap);
  EXPECT_EQ(empty_diff.ToTable().find("test.render.counter"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 100000;
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.counter("test.concurrent.counter");
  Histogram* h = reg.histogram("test.concurrent.hist");
  MetricsSnapshot before = reg.Snapshot();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c, h] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        c->Increment();
        if (i % 1000 == 0) h->Record(i);
      }
    });
  }
  for (auto& w : workers) w.join();

  MetricsSnapshot diff = reg.Snapshot().DiffSince(before);
  EXPECT_EQ(CounterDelta(diff, "test.concurrent.counter"),
            int64_t{kThreads} * kIncrementsPerThread);
  auto it = diff.histograms.find("test.concurrent.hist");
  ASSERT_NE(it, diff.histograms.end());
  EXPECT_EQ(it->second.count, kThreads * (kIncrementsPerThread / 1000));
}

// The executor publishes its per-call ExecStats as exec.* deltas at the
// end of Execute, so a registry diff around one call must reproduce the
// stats — the contract that lets --metrics replace ExecStats printouts.
TEST(RegistryConsistencyTest, ExecutorDeltaMatchesExecStats) {
  Rng rng(20260807);
  RandomDataOptions dopts;
  dopts.min_rows = 32;
  dopts.max_rows = 64;
  dopts.empty_prob = 0;
  RandomQueryOptions qopts;
  qopts.num_rels = 3;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  ASSERT_NE(query, nullptr);

  Executor ex;
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  Relation result = ex.Execute(*query, db);
  MetricsSnapshot diff = MetricsRegistry::Global().Snapshot().DiffSince(before);

  const ExecStats& s = ex.stats();
  EXPECT_GT(s.rows_produced, 0);
  EXPECT_EQ(CounterDelta(diff, "exec.rows_produced"), s.rows_produced);
  EXPECT_EQ(CounterDelta(diff, "exec.probe_comparisons"),
            s.probe_comparisons);
  EXPECT_EQ(CounterDelta(diff, "exec.join_nodes"), s.join_nodes);
  EXPECT_EQ(CounterDelta(diff, "exec.comp_nodes"), s.comp_nodes);
  EXPECT_EQ(CounterDelta(diff, "exec.hash_build_rows"), s.hash_build_rows);
  EXPECT_EQ(CounterDelta(diff, "exec.partitions_built"), s.partitions_built);
  EXPECT_EQ(CounterDelta(diff, "exec.spilled_partitions"),
            s.spilled_partitions);
  EXPECT_EQ(CounterDelta(diff, "exec.spill_bytes"), s.spill_bytes);
}

// Same contract on the search side: TopDownEnumerator::Optimize publishes
// its EnumeratorStats as enum.* deltas.
TEST(RegistryConsistencyTest, EnumeratorDeltaMatchesEnumeratorStats) {
  Rng rng(424242);
  RandomDataOptions dopts;
  dopts.max_rows = 16;
  RandomQueryOptions qopts;
  qopts.num_rels = 4;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  ASSERT_NE(query, nullptr);

  CostModel cost = CostModel::FromDatabase(db);
  TopDownEnumerator enumerator(&cost, EnumeratorOptions{});
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  TopDownEnumerator::Result result = enumerator.Optimize(*query);
  MetricsSnapshot diff = MetricsRegistry::Global().Snapshot().DiffSince(before);

  ASSERT_NE(result.plan, nullptr);
  const EnumeratorStats& s = result.stats;
  EXPECT_GT(s.subplan_calls, 0);
  EXPECT_EQ(CounterDelta(diff, "enum.subplan_calls"), s.subplan_calls);
  EXPECT_EQ(CounterDelta(diff, "enum.pairs_considered"), s.pairs_considered);
  EXPECT_EQ(CounterDelta(diff, "enum.swaps_attempted"), s.swaps_attempted);
  EXPECT_EQ(CounterDelta(diff, "enum.swaps_failed"), s.swaps_failed);
  EXPECT_EQ(CounterDelta(diff, "enum.plans_completed"), s.plans_completed);
  EXPECT_EQ(CounterDelta(diff, "enum.memo_hits"), s.reuses);
  EXPECT_EQ(CounterDelta(diff, "enum.memo_entries"), s.cache_entries);
  EXPECT_EQ(CounterDelta(diff, "enum.bb_prunes"), s.prunes);
  EXPECT_EQ(CounterDelta(diff, "enum.cost_evals"), s.cost_evals);
  EXPECT_EQ(CounterDelta(diff, "enum.cost_memo_hits"), s.cost_memo_hits);
  EXPECT_EQ(CounterDelta(diff, "enum.cloned_nodes"), s.cloned_nodes);
  EXPECT_EQ(CounterDelta(diff, "enum.degraded_runs"), s.degraded ? 1 : 0);
}

}  // namespace
}  // namespace eca
