// Tests for the work-stealing thread pool backing parallel execution.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace eca {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsEveryIteration) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ThreadCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_threads(), 1);
  int64_t sum = 0;
  neg.ParallelFor(10, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, EveryIterationRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 100000;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kCount, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "iteration " << i;
  }
}

TEST(ThreadPoolTest, CountSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(3, [&](int64_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 6);
  // Empty loops must be a no-op, not a hang.
  pool.ParallelFor(0, [&](int64_t) { FAIL() << "no iterations expected"; });
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(64, [&](int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
  }
}

// Work stealing: front-load all the cost onto the first iterations so the
// worker that owns them lags; the loop only finishes in reasonable time if
// the other workers steal the tail. Correctness (every index exactly once)
// is what we assert — timing is not, since CI machines may be single-core.
TEST(ThreadPoolTest, SkewedWorkStillCompletes) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 400;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kCount, [&](int64_t i) {
    if (i < 4) {  // four slow iterations land in worker 0's range
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "iteration " << i;
  }
}

// Reentrant ParallelFor from inside a loop body must run inline (documented
// degradation) rather than deadlock on the pool's own workers.
TEST(ThreadPoolTest, ReentrantCallRunsInline) {
  ThreadPool pool(2);
  std::atomic<int64_t> inner_sum{0};
  pool.ParallelFor(4, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t j) {
      inner_sum.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_sum.load(), 4 * (8 * 7 / 2));
}

// --- MorselCursor ----------------------------------------------------------

TEST(MorselCursorTest, BoundariesDependOnlyOnTotalAndMorselRows) {
  MorselCursor cursor(10, 4);
  EXPECT_EQ(cursor.num_morsels(), 3);
  int64_t begin = -1, end = -1, index = -1;
  ASSERT_TRUE(cursor.Next(&begin, &end, &index));
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 4);
  EXPECT_EQ(index, 0);
  ASSERT_TRUE(cursor.Next(&begin, &end, &index));
  EXPECT_EQ(begin, 4);
  EXPECT_EQ(end, 8);
  EXPECT_EQ(index, 1);
  ASSERT_TRUE(cursor.Next(&begin, &end, &index));
  EXPECT_EQ(begin, 8);
  EXPECT_EQ(end, 10);  // tail morsel is short
  EXPECT_EQ(index, 2);
  EXPECT_FALSE(cursor.Next(&begin, &end, &index));
  EXPECT_FALSE(cursor.Next(&begin, &end, &index));  // stays exhausted
}

TEST(MorselCursorTest, EmptyAndDegenerateInputs) {
  MorselCursor empty(0, 4096);
  EXPECT_EQ(empty.num_morsels(), 0);
  int64_t begin, end, index;
  EXPECT_FALSE(empty.Next(&begin, &end, &index));

  MorselCursor negative(-5, 8);
  EXPECT_EQ(negative.num_morsels(), 0);
  EXPECT_FALSE(negative.Next(&begin, &end, &index));

  // morsel_rows clamps to 1: every row is its own morsel.
  MorselCursor tiny(3, 0);
  EXPECT_EQ(tiny.morsel_rows(), 1);
  EXPECT_EQ(tiny.num_morsels(), 3);

  // One morsel covers a sub-morsel input.
  MorselCursor sub(3, 4096);
  EXPECT_EQ(sub.num_morsels(), 1);
  ASSERT_TRUE(sub.Next(&begin, &end, &index));
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 3);
  EXPECT_FALSE(sub.Next(&begin, &end, &index));
}

TEST(MorselCursorTest, ConcurrentClaimsCoverEveryRowExactlyOnce) {
  constexpr int64_t kRows = 10000;
  MorselCursor cursor(kRows, 7);
  std::vector<std::atomic<int>> hits(kRows);
  for (auto& h : hits) h.store(0);
  ThreadPool pool(4);
  pool.RunOnWorkers([&](int) {
    int64_t begin, end, index;
    while (cursor.Next(&begin, &end, &index)) {
      for (int64_t r = begin; r < end; ++r) {
        hits[static_cast<size_t>(r)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int64_t r = 0; r < kRows; ++r) {
    ASSERT_EQ(hits[static_cast<size_t>(r)].load(), 1) << "row " << r;
  }
}

// --- RunOnWorkers ----------------------------------------------------------

TEST(ThreadPoolTest, RunOnWorkersInvokesEveryWorkerOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> calls(4);
  for (auto& c : calls) c.store(0);
  pool.RunOnWorkers([&](int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    calls[static_cast<size_t>(worker)].fetch_add(1,
                                                 std::memory_order_relaxed);
  });
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(calls[static_cast<size_t>(w)].load(), 1) << "worker " << w;
  }
}

TEST(ThreadPoolTest, RunOnWorkersSingleThreadRunsInline) {
  ThreadPool pool(1);
  int calls = 0;
  pool.RunOnWorkers([&](int worker) {
    EXPECT_EQ(worker, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, RunOnWorkersReentrantRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.RunOnWorkers([&](int) {
    pool.RunOnWorkers([&](int worker) {
      EXPECT_EQ(worker, 0);
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner.load(), 2);  // once per outer invocation
}

TEST(ThreadPoolTest, RunOnWorkersReusableAcrossManyRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> calls{0};
    pool.RunOnWorkers(
        [&](int) { calls.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_EQ(calls.load(), 4) << "round " << round;
  }
}

TEST(ThreadPoolTest, ShardsForBalancesWithoutOverSharding) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.ShardsFor(0), 1);   // degenerate: one empty shard
  EXPECT_EQ(pool.ShardsFor(1), 1);
  EXPECT_EQ(pool.ShardsFor(7), 7);   // never more shards than items
  EXPECT_EQ(pool.ShardsFor(1000), 16);  // 4x threads for balance
  ThreadPool one(1);
  EXPECT_EQ(one.ShardsFor(1000), 4);
}

}  // namespace
}  // namespace eca
