// Tests for the work-stealing thread pool backing parallel execution.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace eca {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsEveryIteration) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ThreadCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_threads(), 1);
  int64_t sum = 0;
  neg.ParallelFor(10, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, EveryIterationRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 100000;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kCount, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "iteration " << i;
  }
}

TEST(ThreadPoolTest, CountSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(3, [&](int64_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 6);
  // Empty loops must be a no-op, not a hang.
  pool.ParallelFor(0, [&](int64_t) { FAIL() << "no iterations expected"; });
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(64, [&](int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
  }
}

// Work stealing: front-load all the cost onto the first iterations so the
// worker that owns them lags; the loop only finishes in reasonable time if
// the other workers steal the tail. Correctness (every index exactly once)
// is what we assert — timing is not, since CI machines may be single-core.
TEST(ThreadPoolTest, SkewedWorkStillCompletes) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 400;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kCount, [&](int64_t i) {
    if (i < 4) {  // four slow iterations land in worker 0's range
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "iteration " << i;
  }
}

// Reentrant ParallelFor from inside a loop body must run inline (documented
// degradation) rather than deadlock on the pool's own workers.
TEST(ThreadPoolTest, ReentrantCallRunsInline) {
  ThreadPool pool(2);
  std::atomic<int64_t> inner_sum{0};
  pool.ParallelFor(4, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t j) {
      inner_sum.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_sum.load(), 4 * (8 * 7 / 2));
}

TEST(ThreadPoolTest, ShardsForBalancesWithoutOverSharding) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.ShardsFor(0), 1);   // degenerate: one empty shard
  EXPECT_EQ(pool.ShardsFor(1), 1);
  EXPECT_EQ(pool.ShardsFor(7), 7);   // never more shards than items
  EXPECT_EQ(pool.ShardsFor(1000), 16);  // 4x threads for balance
  ThreadPool one(1);
  EXPECT_EQ(one.ShardsFor(1000), 4);
}

}  // namespace
}  // namespace eca
