// MemoryTracker: hierarchical reservation accounting, soft/hard threshold
// semantics, RAII reservations, and concurrent charging.

#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eca {
namespace {

TEST(MemoryTrackerTest, ReserveAndReleaseBalance) {
  MemoryTracker t(0, 0);  // accounting only
  EXPECT_EQ(t.used(), 0);
  ASSERT_TRUE(t.Reserve(100).ok());
  ASSERT_TRUE(t.Reserve(50).ok());
  EXPECT_EQ(t.used(), 150);
  EXPECT_EQ(t.peak(), 150);
  t.Release(120);
  EXPECT_EQ(t.used(), 30);
  EXPECT_EQ(t.peak(), 150);  // peak is a high-water mark
  t.Release(30);
  EXPECT_EQ(t.used(), 0);
}

TEST(MemoryTrackerTest, HardLimitFailsCleanlyAndChargesNothing) {
  MemoryTracker t(0, 1000);
  ASSERT_TRUE(t.Reserve(900).ok());
  Status s = t.Reserve(200, "test blob");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("test blob"), std::string::npos);
  // A failed reservation must not leak a partial charge.
  EXPECT_EQ(t.used(), 900);
  // Exactly up to the limit is allowed.
  EXPECT_TRUE(t.Reserve(100).ok());
  EXPECT_EQ(t.used(), 1000);
}

TEST(MemoryTrackerTest, SoftThresholdSignalsWithoutFailing) {
  MemoryTracker t(500, 1000);
  EXPECT_FALSE(t.SoftExceeded());
  EXPECT_FALSE(t.WouldExceedSoft(100));
  EXPECT_TRUE(t.WouldExceedSoft(500));
  ASSERT_TRUE(t.Reserve(600).ok());  // past soft, below hard: succeeds
  EXPECT_TRUE(t.SoftExceeded());
  EXPECT_TRUE(t.WouldExceedSoft(1));
}

TEST(MemoryTrackerTest, ChildChargesParentFirst) {
  MemoryTracker query(0, 1000);
  MemoryTracker op_a(0, 0, &query);
  MemoryTracker op_b(0, 0, &query);
  ASSERT_TRUE(op_a.Reserve(400).ok());
  ASSERT_TRUE(op_b.Reserve(500).ok());
  EXPECT_EQ(query.used(), 900);
  // The parent's hard limit bounds the children's sum even though neither
  // child has its own limit.
  EXPECT_EQ(op_a.Reserve(200).code(), StatusCode::kResourceExhausted);
  // The refused reservation left both levels untouched.
  EXPECT_EQ(op_a.used(), 400);
  EXPECT_EQ(query.used(), 900);
  op_a.Release(400);
  op_b.Release(500);
  EXPECT_EQ(query.used(), 0);
}

TEST(MemoryTrackerTest, ChildSeesParentSoftPressure) {
  MemoryTracker query(500, 1000);
  MemoryTracker op(0, 0, &query);
  ASSERT_TRUE(query.Reserve(600).ok());
  // The child has no threshold of its own, but escalation predicates look
  // up the chain: spilling relieves query-level pressure.
  EXPECT_TRUE(op.SoftExceeded());
  EXPECT_TRUE(op.WouldExceedSoft(1));
  query.Release(600);
}

TEST(MemoryTrackerTest, DestructionReturnsStrandedBalanceToParent) {
  // A failed query's tracker is discarded with charges outstanding (the
  // executor stops releasing once the query carries an error). The
  // destructor must hand the leftover back, or a shared long-lived root —
  // the ecad service's — drifts upward with every failed query.
  MemoryTracker root(0, 0);
  {
    MemoryTracker query(0, 0, &root);
    ASSERT_TRUE(query.Reserve(1024).ok());
    EXPECT_EQ(root.used(), 1024);
  }
  EXPECT_EQ(root.used(), 0);
}

TEST(MemoryTrackerTest, ScopedReservationReleasesOnDestruction) {
  MemoryTracker t(0, 0);
  {
    ScopedReservation r(&t, 256);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(t.used(), 256);
    ASSERT_TRUE(r.Add(64).ok());
    EXPECT_EQ(r.bytes(), 320);
  }
  EXPECT_EQ(t.used(), 0);
}

TEST(MemoryTrackerTest, ScopedReservationDetachKeepsCharge) {
  MemoryTracker t(0, 0);
  int64_t detached = 0;
  {
    ScopedReservation r(&t, 128);
    detached = r.Detach();
  }
  EXPECT_EQ(detached, 128);
  EXPECT_EQ(t.used(), 128);  // survives the scope; owner releases later
  t.Release(detached);
  EXPECT_EQ(t.used(), 0);
}

TEST(MemoryTrackerTest, FailedAddLeavesScopedReservationConsistent) {
  MemoryTracker t(0, 100);
  ScopedReservation r(&t, 80);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.Add(50).ok());
  EXPECT_EQ(r.bytes(), 80);  // failed Add charged nothing
  r.Reset();
  EXPECT_EQ(t.used(), 0);
}

TEST(MemoryTrackerTest, ConcurrentReserveReleaseStaysConsistent) {
  MemoryTracker query(0, 0);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&query] {
      MemoryTracker op(0, 0, &query);
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(op.Reserve(64).ok());
        op.Release(64);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(query.used(), 0);
  EXPECT_GE(query.peak(), 64);
}

TEST(MemoryTrackerTest, UnlimitedTrackerNeverFails) {
  MemoryTracker t(0, 0);
  EXPECT_TRUE(t.Reserve(int64_t{1} << 40).ok());
  EXPECT_FALSE(t.SoftExceeded());  // no soft threshold configured
  t.Release(int64_t{1} << 40);
}

}  // namespace
}  // namespace eca
