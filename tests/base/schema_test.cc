#include "catalog/schema.h"

#include <gtest/gtest.h>

namespace eca {
namespace {

Schema TwoRelSchema() {
  return Schema({{0, "k", DataType::kInt64},
                 {0, "a", DataType::kInt64},
                 {1, "k", DataType::kInt64},
                 {1, "b", DataType::kString}});
}

TEST(SchemaTest, FindColumn) {
  Schema s = TwoRelSchema();
  EXPECT_EQ(s.FindColumn(0, "k"), 0);
  EXPECT_EQ(s.FindColumn(1, "k"), 2);
  EXPECT_EQ(s.FindColumn(1, "b"), 3);
  EXPECT_EQ(s.FindColumn(2, "k"), -1);
  EXPECT_EQ(s.FindColumn(0, "b"), -1);
}

TEST(SchemaTest, RelsAndColumnsOf) {
  Schema s = TwoRelSchema();
  EXPECT_EQ(s.rels(), RelSet::FirstN(2));
  EXPECT_EQ(s.ColumnsOf(RelSet::Single(1)), (std::vector<int>{2, 3}));
  EXPECT_EQ(s.ColumnsOf(RelSet::FirstN(2)), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(s.ColumnsOf(RelSet::Single(5)).empty());
}

TEST(SchemaTest, ProjectKeepsOrder) {
  Schema s = TwoRelSchema();
  Schema p = s.Project(RelSet::Single(1));
  ASSERT_EQ(p.NumColumns(), 2);
  EXPECT_EQ(p.column(0).name, "k");
  EXPECT_EQ(p.column(1).name, "b");
  EXPECT_EQ(p.rels(), RelSet::Single(1));
}

TEST(SchemaTest, ConcatDisjoint) {
  Schema a({{0, "k", DataType::kInt64}});
  Schema b({{1, "k", DataType::kInt64}});
  Schema c = a.Concat(b);
  EXPECT_EQ(c.NumColumns(), 2);
  EXPECT_EQ(c.rels(), RelSet::FirstN(2));
}

TEST(RelSetTest, Basics) {
  RelSet s = RelSet::Single(2).Union(RelSet::Single(5));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 2);
  EXPECT_EQ(s.Min(), 2);
  EXPECT_EQ(s.ToString(), "{R2,R5}");
  EXPECT_TRUE(RelSet::FirstN(6).ContainsAll(s));
  EXPECT_FALSE(s.ContainsAll(RelSet::FirstN(6)));
  EXPECT_EQ(s.Minus(RelSet::Single(2)), RelSet::Single(5));

  std::vector<int> members;
  for (int id : RelSet::FirstN(3)) members.push_back(id);
  EXPECT_EQ(members, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace eca
