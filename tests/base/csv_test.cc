// Round-trip tests for the .tbl serialization.

#include "storage/csv.h"

#include <gtest/gtest.h>

#include "testing/random_data.h"
#include "tpch/tpch_gen.h"

#include "../test_util.h"

namespace eca {
namespace {

TEST(CsvTest, RoundTripWithNullsAndTypes) {
  Relation r = MakeRelation({{0, "k", DataType::kInt64},
                             {0, "name", DataType::kString},
                             {0, "price", DataType::kDouble}},
                            {{I(1), S("widget"), Value::Real(19.5)},
                             {I(2), N(), Value::Real(-0.25)},
                             {I(3), S("gadget"), Value::Null(DataType::kDouble)},
                             {N(), S(""), Value::Real(1e-9)}});
  std::string text = RelationToTbl(r);
  Relation back = RelationFromTbl(r.schema(), text);
  ExpectSameRelation(r, back, "tbl round trip");
}

TEST(CsvTest, EmptyStringAndNullDistinct) {
  Relation r = MakeRelation({{0, "s", DataType::kString}},
                            {{S("")}, {N()}});
  std::string text = RelationToTbl(r);
  EXPECT_NE(text.find("\\N"), std::string::npos);
  Relation back = RelationFromTbl(r.schema(), text);
  ASSERT_EQ(back.NumRows(), 2);
  EXPECT_FALSE(back.rows()[0][0].is_null());
  EXPECT_TRUE(back.rows()[1][0].is_null());
}

TEST(CsvTest, RandomRelationsRoundTrip) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 3 + 11);
    RandomDataOptions opts;
    opts.null_prob = 0.3;
    opts.max_rows = 30;
    Relation r = RandomRelation(rng, 0, opts);
    Relation back = RelationFromTbl(r.schema(), RelationToTbl(r));
    ExpectSameRelation(r, back);
  }
}

TEST(CsvTest, FileRoundTrip) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 5);
  std::string path = ::testing::TempDir() + "/eca_supplier.tbl";
  ASSERT_TRUE(WriteRelationFile(path, data.supplier));
  Relation back;
  ASSERT_TRUE(ReadRelationFile(path, data.supplier.schema(), &back));
  ExpectSameRelation(data.supplier, back, "file round trip");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  Relation out;
  EXPECT_FALSE(ReadRelationFile("/nonexistent/path/x.tbl",
                                Schema({{0, "a", DataType::kInt64}}), &out));
}

}  // namespace
}  // namespace eca
