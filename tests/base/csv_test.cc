// Round-trip tests for the .tbl serialization, plus regression coverage
// for the malformed-input Status paths (wrong arity, truncation, garbage
// numerics) — none of which may abort.

#include "storage/csv.h"

#include <gtest/gtest.h>

#include "testing/random_data.h"
#include "tpch/tpch_gen.h"

#include "../test_util.h"

namespace eca {
namespace {

TEST(CsvTest, RoundTripWithNullsAndTypes) {
  Relation r = MakeRelation({{0, "k", DataType::kInt64},
                             {0, "name", DataType::kString},
                             {0, "price", DataType::kDouble}},
                            {{I(1), S("widget"), Value::Real(19.5)},
                             {I(2), N(), Value::Real(-0.25)},
                             {I(3), S("gadget"), Value::Null(DataType::kDouble)},
                             {N(), S(""), Value::Real(1e-9)}});
  std::string text = RelationToTbl(r);
  StatusOr<Relation> back = RelationFromTbl(r.schema(), text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameRelation(r, *back, "tbl round trip");
}

TEST(CsvTest, EmptyStringAndNullDistinct) {
  Relation r = MakeRelation({{0, "s", DataType::kString}},
                            {{S("")}, {N()}});
  std::string text = RelationToTbl(r);
  EXPECT_NE(text.find("\\N"), std::string::npos);
  StatusOr<Relation> back = RelationFromTbl(r.schema(), text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumRows(), 2);
  EXPECT_FALSE(back->rows()[0][0].is_null());
  EXPECT_TRUE(back->rows()[1][0].is_null());
}

TEST(CsvTest, RandomRelationsRoundTrip) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 3 + 11);
    RandomDataOptions opts;
    opts.null_prob = 0.3;
    opts.max_rows = 30;
    Relation r = RandomRelation(rng, 0, opts);
    StatusOr<Relation> back = RelationFromTbl(r.schema(), RelationToTbl(r));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectSameRelation(r, *back);
  }
}

TEST(CsvTest, FileRoundTrip) {
  TpchData data = GenerateTpch(TpchScale::OfSF(0.002), 5);
  std::string path = ::testing::TempDir() + "/eca_supplier.tbl";
  ASSERT_TRUE(WriteRelationFile(path, data.supplier));
  Relation back;
  Status s = ReadRelationFile(path, data.supplier.schema(), &back);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectSameRelation(data.supplier, back, "file round trip");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  Relation out;
  Status s = ReadRelationFile("/nonexistent/path/x.tbl",
                              Schema({{0, "a", DataType::kInt64}}), &out);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("/nonexistent/path/x.tbl"), std::string::npos);
}

// ---- malformed-input regression fixtures ---------------------------------

Schema TwoIntCols() {
  return Schema({{0, "k", DataType::kInt64}, {0, "a", DataType::kInt64}});
}

TEST(CsvMalformedTest, WrongArityTooFewFields) {
  // Second row lost a field — the error names source, line and field.
  StatusOr<Relation> r =
      RelationFromTbl(TwoIntCols(), "1|2\n3\n", "fixture.tbl");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("fixture.tbl:2"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("R0.a"), std::string::npos);
}

TEST(CsvMalformedTest, WrongArityTooManyFields) {
  StatusOr<Relation> r =
      RelationFromTbl(TwoIntCols(), "1|2|3\n", "fixture.tbl");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("more fields"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvMalformedTest, TruncatedFinalRow) {
  // File cut off mid-row: last line has no newline and too few fields.
  StatusOr<Relation> r =
      RelationFromTbl(TwoIntCols(), "1|2\n3", "trunc.tbl");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("trunc.tbl:2"), std::string::npos);
}

TEST(CsvMalformedTest, GarbageNumericField) {
  StatusOr<Relation> r =
      RelationFromTbl(TwoIntCols(), "1|banana\n", "fixture.tbl");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'banana'"), std::string::npos)
      << r.status().ToString();

  Schema dbl({{0, "x", DataType::kDouble}});
  StatusOr<Relation> r2 = RelationFromTbl(dbl, "1.5x\n", "fixture.tbl");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("as double"), std::string::npos);
}

TEST(CsvMalformedTest, MalformedFileReportsPath) {
  std::string path = ::testing::TempDir() + "/eca_malformed.tbl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1|2\nnot-a-number|7\n", f);
  std::fclose(f);
  Relation out;
  Status s = ReadRelationFile(path, TwoIntCols(), &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(path + ":2"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eca
