// Tests for the common utilities (RNG, string helpers).

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/str_util.h"

namespace eca {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all values hit over 1000 draws
  // Degenerate range.
  EXPECT_EQ(rng.Uniform(4, 4), 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StrUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, StrRepeat) {
  EXPECT_EQ(StrRepeat("ab", 3), "ababab");
  EXPECT_EQ(StrRepeat("x", 0), "");
  EXPECT_EQ(StrRepeat("x", -2), "");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3), "0.33");
  // Long output beyond any small internal buffer.
  std::string big = StrFormat("%s", std::string(5000, 'z').c_str());
  EXPECT_EQ(big.size(), 5000u);
}

}  // namespace
}  // namespace eca
