#include "storage/relation.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eca {
namespace {

Relation SmallRel() {
  return MakeRelation({{0, "k", DataType::kInt64}, {0, "a", DataType::kInt64}},
                      {{I(1), I(10)}, {I(2), N()}});
}

TEST(RelationTest, AddAndAccess) {
  Relation r = SmallRel();
  EXPECT_EQ(r.NumRows(), 2);
  EXPECT_TRUE(r.rows()[1][1].is_null());
}

TEST(RelationTest, CompareTuplesNullFirst) {
  Tuple a = {N(), I(1)};
  Tuple b = {I(0), I(1)};
  EXPECT_LT(CompareTuples(a, b), 0);
  EXPECT_EQ(CompareTuples(a, a), 0);
}

TEST(RelationTest, SameMultisetIgnoresRowOrder) {
  Relation a = SmallRel();
  Relation b = MakeRelation(
      {{0, "k", DataType::kInt64}, {0, "a", DataType::kInt64}},
      {{I(2), N()}, {I(1), I(10)}});
  EXPECT_TRUE(SameMultiset(a, b));
}

TEST(RelationTest, SameMultisetCountsDuplicates) {
  Relation a = MakeRelation({{0, "a", DataType::kInt64}},
                            {{I(1)}, {I(1)}, {I(2)}});
  Relation b = MakeRelation({{0, "a", DataType::kInt64}},
                            {{I(1)}, {I(2)}, {I(2)}});
  EXPECT_FALSE(SameMultiset(a, b));
}

TEST(RelationTest, SameMultisetRequiresEqualSchemas) {
  Relation a = MakeRelation({{0, "a", DataType::kInt64}}, {{I(1)}});
  Relation b = MakeRelation({{1, "a", DataType::kInt64}}, {{I(1)}});
  EXPECT_FALSE(SameMultiset(a, b));
}

TEST(RelationTest, ExplainDifferenceShowsMismatch) {
  Relation a = MakeRelation({{0, "a", DataType::kInt64}}, {{I(1)}});
  Relation b = MakeRelation({{0, "a", DataType::kInt64}}, {{I(2)}});
  std::string diff = ExplainDifference(a, b);
  EXPECT_NE(diff.find("only in left"), std::string::npos);
  EXPECT_NE(diff.find("only in right"), std::string::npos);
  EXPECT_TRUE(ExplainDifference(a, a).empty());
}

TEST(RelationTest, NullsForAndConcat) {
  Schema s({{0, "a", DataType::kInt64}, {1, "b", DataType::kString}});
  Tuple pad = NullsFor(s, 1, 1);
  ASSERT_EQ(pad.size(), 1u);
  EXPECT_TRUE(pad[0].is_null());
  EXPECT_EQ(pad[0].type(), DataType::kString);
  Tuple joined = ConcatTuples({I(5)}, pad);
  EXPECT_EQ(joined.size(), 2u);
}

}  // namespace
}  // namespace eca
