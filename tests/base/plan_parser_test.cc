// Round-trip tests for the compact plan notation: every plan the system
// produces must survive ToInlineString -> ParsePlan unchanged.

#include "algebra/plan_parser.h"

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "testing/random_data.h"
#include "testing/random_query.h"

namespace eca {
namespace {

// Collects the predicate dictionary (display label -> PredRef) of a plan.
void CollectPreds(const Plan& plan, std::map<std::string, PredRef>* out) {
  switch (plan.kind()) {
    case Plan::Kind::kLeaf:
      return;
    case Plan::Kind::kJoin:
      if (plan.pred() != nullptr) {
        (*out)[plan.pred()->DisplayName()] = plan.pred();
      }
      CollectPreds(*plan.left(), out);
      CollectPreds(*plan.right(), out);
      return;
    case Plan::Kind::kComp:
      if (plan.comp().pred != nullptr) {
        (*out)[plan.comp().pred->DisplayName()] = plan.comp().pred;
      }
      CollectPreds(*plan.child(), out);
      return;
  }
}

void ExpectRoundTrip(const Plan& plan) {
  std::map<std::string, PredRef> preds;
  CollectPreds(plan, &preds);
  std::string text = plan.ToInlineString();
  std::string error;
  PlanPtr parsed = ParsePlan(text, preds, &error);
  ASSERT_NE(parsed, nullptr) << text << "\nerror: " << error;
  EXPECT_TRUE(PlanEquals(plan, *parsed)) << text;
  EXPECT_EQ(parsed->ToInlineString(), text);
}

TEST(PlanParserTest, HandwrittenForms) {
  std::map<std::string, PredRef> preds = {
      {"p01", EquiJoin(0, "a", 1, "a", "p01")},
      {"p12", EquiJoin(1, "b", 2, "b", "p12")},
  };
  const char* cases[] = {
      "R0",
      "(R0 join[p01] R1)",
      "(R0 laj[p01] (R1 loj[p12] R2))",
      "(R0 cross R1)",
      "pi{R0}(gamma{R1}((R0 loj[p01] R1)))",
      "beta(lambda[p12,{R1,R2}]((R0 loj[p01] (R1 join[p12] R2))))",
      "gamma*[{R2} keep {R0}]((R0 loj[p01] R1))",
  };
  for (const char* c : cases) {
    std::string error;
    PlanPtr plan = ParsePlan(c, preds, &error);
    ASSERT_NE(plan, nullptr) << c << " -> " << error;
    EXPECT_EQ(plan->ToInlineString(), c);
  }
}

TEST(PlanParserTest, Errors) {
  std::map<std::string, PredRef> preds = {
      {"p01", EquiJoin(0, "a", 1, "a", "p01")}};
  std::string error;
  EXPECT_EQ(ParsePlan("", preds, &error), nullptr);
  EXPECT_EQ(ParsePlan("(R0 join[p99] R1)", preds, &error), nullptr);
  EXPECT_NE(error.find("p99"), std::string::npos);
  EXPECT_EQ(ParsePlan("(R0 join[p01] R1", preds, &error), nullptr);
  EXPECT_EQ(ParsePlan("(R0 frob[p01] R1)", preds, &error), nullptr);
  EXPECT_EQ(ParsePlan("R0 R1", preds, &error), nullptr);
  EXPECT_EQ(ParsePlan("pi{R0}", preds, &error), nullptr);
}

class ParserRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ParserRoundTrip, RandomQueriesAndOptimizedPlans) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 83 + 7);
  RandomDataOptions dopts;
  RandomQueryOptions qopts;
  qopts.num_rels = 3 + seed % 3;
  Database db = RandomDatabase(rng, qopts.num_rels, dopts);
  PlanPtr query = RandomQuery(rng, qopts, dopts);
  ExpectRoundTrip(*query);

  // Optimized plans exercise the compensation-operator notation.
  CostModel cost = CostModel::FromDatabase(db);
  EnumeratorOptions opts;
  TopDownEnumerator e(&cost, opts);
  auto result = e.Optimize(*query);
  ASSERT_NE(result.plan, nullptr);
  ExpectRoundTrip(*result.plan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip, ::testing::Range(0, 15));

}  // namespace
}  // namespace eca
