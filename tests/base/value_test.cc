#include "types/value.h"

#include <gtest/gtest.h>

#include "types/tri_bool.h"

namespace eca {
namespace {

TEST(ValueTest, NullBasics) {
  Value v = Value::Null();
  EXPECT_TRUE(v.is_null());
  Value d = Value::Null(DataType::kDouble);
  EXPECT_TRUE(d.is_null());
  EXPECT_EQ(d.type(), DataType::kDouble);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, CompareTotalOrderNullFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null(DataType::kString)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(3).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Real(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
  EXPECT_GT(Value::Real(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, StringsOrderedAfterNumbers) {
  EXPECT_LT(Value::Int(1'000'000).Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Str("a").Compare(Value::Str("b")), 0);
}

TEST(ValueTest, HashConsistentWithCompare) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Real(42.0).Hash());
  EXPECT_EQ(Value::Str("xyz").Hash(), Value::Str("xyz").Hash());
  // Nulls hash equal to each other regardless of type.
  EXPECT_EQ(Value::Null(DataType::kInt64).Hash(),
            Value::Null(DataType::kString).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Real(2.5).ToString(), "2.5");
}

TEST(TriBoolTest, ThreeValuedLogicTables) {
  using enum TriBool;
  EXPECT_EQ(TriAnd(kTrue, kTrue), kTrue);
  EXPECT_EQ(TriAnd(kTrue, kUnknown), kUnknown);
  EXPECT_EQ(TriAnd(kFalse, kUnknown), kFalse);
  EXPECT_EQ(TriOr(kFalse, kUnknown), kUnknown);
  EXPECT_EQ(TriOr(kTrue, kUnknown), kTrue);
  EXPECT_EQ(TriNot(kUnknown), kUnknown);
  EXPECT_EQ(TriNot(kTrue), kFalse);
  EXPECT_FALSE(IsTrue(kUnknown));
}

}  // namespace
}  // namespace eca
