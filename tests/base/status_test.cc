// Tests for the Status / StatusOr error-propagation layer.

#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "testing/fault_injection.h"

namespace eca {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad plan");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad plan");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad plan");
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::NotFound("no column R0.z").WithContext("while binding");
  EXPECT_EQ(s.message(), "while binding: no column R0.z");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode c : {StatusCode::kOk, StatusCode::kInvalidArgument,
                       StatusCode::kNotFound, StatusCode::kOutOfRange,
                       StatusCode::kResourceExhausted, StatusCode::kDataLoss,
                       StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "UNKNOWN");
  }
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Status UseParsed(int x, int* out) {
  ECA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, ValueAndErrorStates) {
  StatusOr<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  StatusOr<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, PropagationMacros) {
  int out = 0;
  EXPECT_TRUE(UseParsed(4, &out).ok());
  EXPECT_EQ(out, 8);
  Status s = UseParsed(0, &out);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, 8);  // untouched on error
}

TEST(StatusOrTest, MoveOnlyPayload) {
  StatusOr<std::unique_ptr<int>> p = std::make_unique<int>(7);
  ASSERT_TRUE(p.ok());
  std::unique_ptr<int> owned = std::move(p).value();
  EXPECT_EQ(*owned, 7);
}

TEST(FaultInjectionTest, DisarmedNeverFires) {
  FaultInjector::Reset();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultInjector::ShouldFail(FaultPoint::kAllocation));
  }
  EXPECT_EQ(FaultInjector::HitCount(FaultPoint::kAllocation), 100);
  FaultInjector::Reset();
}

TEST(FaultInjectionTest, SkipCountsThenFailsPersistently) {
  FaultInjector::Reset();
  FaultInjector::Arm(FaultPoint::kRewriteRule, /*skip=*/2);
  EXPECT_FALSE(FaultInjector::ShouldFail(FaultPoint::kRewriteRule));
  EXPECT_FALSE(FaultInjector::ShouldFail(FaultPoint::kRewriteRule));
  EXPECT_TRUE(FaultInjector::ShouldFail(FaultPoint::kRewriteRule));
  EXPECT_TRUE(FaultInjector::ShouldFail(FaultPoint::kRewriteRule));
  FaultInjector::Disarm(FaultPoint::kRewriteRule);
  EXPECT_FALSE(FaultInjector::ShouldFail(FaultPoint::kRewriteRule));
  FaultInjector::Reset();
}

TEST(FaultInjectionTest, ScopedFaultRestores) {
  FaultInjector::Reset();
  {
    ScopedFault fault(FaultPoint::kEnumeratorBudget);
    EXPECT_TRUE(FaultInjector::ShouldFail(FaultPoint::kEnumeratorBudget));
  }
  EXPECT_FALSE(FaultInjector::ShouldFail(FaultPoint::kEnumeratorBudget));
  FaultInjector::Reset();
}

TEST(FaultInjectionTest, PointsHaveNames) {
  EXPECT_STREQ(FaultPointName(FaultPoint::kEnumeratorBudget),
               "enumerator-budget");
  EXPECT_STREQ(FaultPointName(FaultPoint::kRewriteRule), "rewrite-rule");
  EXPECT_STREQ(FaultPointName(FaultPoint::kAllocation), "allocation");
}

}  // namespace
}  // namespace eca
