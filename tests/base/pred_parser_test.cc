// Tests for the simple predicate parser used by ecatool.

#include "expr/pred_parser.h"

#include <gtest/gtest.h>

namespace eca {
namespace {

TEST(PredParserTest, ParsesComparisonsAndConjunctions) {
  std::string error;
  PredRef p = ParsePredicate("R0.a = R1.a", "p01", &error);
  ASSERT_NE(p, nullptr) << error;
  EXPECT_EQ(p->DisplayName(), "p01");
  EXPECT_EQ(p->ToString(), "R0.a = R1.a");
  EXPECT_EQ(p->refs(), RelSet::FirstN(2));
  EXPECT_TRUE(p->null_intolerant());

  PredRef q = ParsePredicate("R0.x <= 5 AND R1.y <> -2.5", "", &error);
  ASSERT_NE(q, nullptr) << error;
  EXPECT_EQ(q->kind(), Predicate::Kind::kAnd);
  EXPECT_EQ(q->children().size(), 2u);

  PredRef r = ParsePredicate("R2.long_name > 1e3", "", &error);
  ASSERT_NE(r, nullptr) << error;
  EXPECT_EQ(r->refs(), RelSet::Single(2));
}

TEST(PredParserTest, EvaluatesLikeHandBuilt) {
  Schema s({{0, "a", DataType::kInt64}, {1, "a", DataType::kInt64}});
  std::string error;
  PredRef parsed = ParsePredicate("R0.a = R1.a", "", &error);
  ASSERT_NE(parsed, nullptr);
  PredRef built = Eq(Col(0, "a"), Col(1, "a"));
  for (const Tuple& t :
       std::vector<Tuple>{{Value::Int(1), Value::Int(1)},
                          {Value::Int(1), Value::Int(2)},
                          {Value::Null(), Value::Int(1)}}) {
    EXPECT_EQ(parsed->Eval(s, t), built->Eval(s, t));
  }
}

TEST(PredParserTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_EQ(ParsePredicate("", "", &error), nullptr);
  EXPECT_EQ(ParsePredicate("R0.a", "", &error), nullptr);
  EXPECT_EQ(ParsePredicate("R0.a = ", "", &error), nullptr);
  EXPECT_EQ(ParsePredicate("R0.a ~ R1.a", "", &error), nullptr);
  EXPECT_EQ(ParsePredicate("Rx.a = R1.a", "", &error), nullptr);
  EXPECT_EQ(ParsePredicate("R0.a = R1.a garbage", "", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace eca
