#include "algebra/plan.h"

#include <gtest/gtest.h>

namespace eca {
namespace {

PlanPtr ThreeWayPlan() {
  // R0 laj[p01] (R1 loj[p12] R2)
  return Plan::Join(JoinOp::kLeftAnti, EquiJoin(0, "a", 1, "a", "p01"),
                    Plan::Leaf(0),
                    Plan::Join(JoinOp::kLeftOuter,
                               EquiJoin(1, "b", 2, "b", "p12"),
                               Plan::Leaf(1), Plan::Leaf(2)));
}

TEST(PlanTest, LeavesAndOutputRels) {
  PlanPtr p = ThreeWayPlan();
  EXPECT_EQ(p->leaves(), RelSet::FirstN(3));
  // Left antijoin hides the right side from the output.
  EXPECT_EQ(p->output_rels(), RelSet::Single(0));
  EXPECT_EQ(p->right()->output_rels(), RelSet::FirstN(3).Without(0));
}

TEST(PlanTest, CompNodesAndProjection) {
  PlanPtr p = Plan::Comp(
      CompOp::Project(RelSet::Single(1)),
      Plan::Comp(CompOp::Gamma(RelSet::Single(2)), ThreeWayPlan()->Clone()));
  // gamma over R2's attrs... note the antijoin hides R2; output_rels of the
  // projected plan narrows to {R1} intersect visible = {} here since R0 is
  // the only visible relation. Use a join plan instead:
  PlanPtr j = Plan::Comp(
      CompOp::Project(RelSet::Single(1)),
      Plan::Join(JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"),
                 Plan::Leaf(0), Plan::Leaf(1)));
  EXPECT_EQ(j->output_rels(), RelSet::Single(1));
  EXPECT_EQ(j->leaves(), RelSet::FirstN(2));
  (void)p;
}

TEST(PlanTest, CloneIsDeepAndEqual) {
  PlanPtr p = ThreeWayPlan();
  PlanPtr q = p->Clone();
  EXPECT_TRUE(PlanEquals(*p, *q));
  q->set_op(JoinOp::kLeftSemi);
  EXPECT_FALSE(PlanEquals(*p, *q));
  EXPECT_EQ(p->op(), JoinOp::kLeftAnti);  // original untouched
}

TEST(PlanTest, OutputSchema) {
  std::vector<Schema> base = {
      Schema({{0, "a", DataType::kInt64}}),
      Schema({{1, "a", DataType::kInt64}, {1, "b", DataType::kInt64}}),
      Schema({{2, "b", DataType::kInt64}}),
  };
  PlanPtr p = ThreeWayPlan();
  Schema s = PlanOutputSchema(*p, base);
  EXPECT_EQ(s.NumColumns(), 1);  // antijoin output = R0 only
  Schema inner = PlanOutputSchema(*p->right(), base);
  EXPECT_EQ(inner.NumColumns(), 3);
}

TEST(PlanTest, NavigationHelpers) {
  PlanPtr root = ThreeWayPlan();
  Plan* inner_join = root->right();
  EXPECT_EQ(ParentJoin(root.get(), inner_join), root.get());
  EXPECT_EQ(ParentJoin(root.get(), root.get()), nullptr);

  // Parent of a leaf under a comp node skips to the enclosing join.
  PlanPtr with_comp = Plan::Join(
      JoinOp::kInner, EquiJoin(0, "a", 1, "a", "p01"), Plan::Leaf(0),
      Plan::Comp(CompOp::Beta(), Plan::Leaf(1)));
  const Plan* leaf1 = with_comp->right()->child();
  EXPECT_EQ(ParentJoin(with_comp.get(), leaf1), with_comp.get());
  EXPECT_EQ(ParentNode(with_comp.get(), leaf1), with_comp->right());

  PlanPtr* slot = FindSlot(with_comp, leaf1);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->get(), leaf1);

  std::vector<Plan*> joins;
  CollectJoins(root.get(), &joins);
  EXPECT_EQ(joins.size(), 2u);
}

TEST(PlanTest, NormalizeRightVariants) {
  PlanPtr p = Plan::Join(JoinOp::kRightOuter, EquiJoin(0, "a", 1, "a", "p01"),
                         Plan::Leaf(0), Plan::Leaf(1));
  NormalizeRightVariants(p.get());
  EXPECT_EQ(p->op(), JoinOp::kLeftOuter);
  EXPECT_EQ(p->left()->rel_id(), 1);
  EXPECT_EQ(p->right()->rel_id(), 0);
}

TEST(PlanTest, ToStringRendersTree) {
  std::string s = ThreeWayPlan()->ToString();
  EXPECT_NE(s.find("laj[p01]"), std::string::npos);
  EXPECT_NE(s.find("loj[p12]"), std::string::npos);
  std::string inline_s = ThreeWayPlan()->ToInlineString();
  EXPECT_EQ(inline_s, "(R0 laj[p01] (R1 loj[p12] R2))");
}

TEST(JoinOpTest, Helpers) {
  EXPECT_TRUE(IsAnti(JoinOp::kRightAnti));
  EXPECT_TRUE(IsSemi(JoinOp::kLeftSemi));
  EXPECT_TRUE(OutputsOneSide(JoinOp::kLeftAnti));
  EXPECT_FALSE(OutputsOneSide(JoinOp::kLeftOuter));
  EXPECT_TRUE(PadsLeft(JoinOp::kFullOuter));
  EXPECT_TRUE(PadsRight(JoinOp::kFullOuter));
  EXPECT_FALSE(PadsRight(JoinOp::kLeftOuter));
  EXPECT_EQ(Mirror(JoinOp::kLeftAnti), JoinOp::kRightAnti);
  EXPECT_EQ(Mirror(JoinOp::kInner), JoinOp::kInner);
  EXPECT_TRUE(IsRightVariant(JoinOp::kRightSemi));
}

}  // namespace
}  // namespace eca
