// Multi-thread stress for the lock-free tables under the shared memo
// (common/concurrent_table.h). These are the properties the enumerator's
// determinism argument leans on: every published node stays reachable,
// the chain for a key contains exactly what was published for it, a
// saturated probe window rejects cleanly, and the cost table never
// returns a torn or wrong value. Run under the TSan CI lane.

#include "common/concurrent_table.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace eca {
namespace {

struct TestNode {
  std::atomic<TestNode*> next{nullptr};
  uint64_t key = 0;
  int thread = 0;
  int seq = 0;
};

// CAS-prepend `node` to the chain ClaimHead returns; false when the
// probe window is saturated (the caller drops the node).
bool Prepend(ConcurrentChainTable<TestNode>* table, TestNode* node) {
  std::atomic<TestNode*>* head = table->ClaimHead(node->key);
  if (head == nullptr) return false;
  TestNode* observed = head->load(std::memory_order_acquire);
  do {
    node->next.store(observed, std::memory_order_relaxed);
  } while (!head->compare_exchange_weak(observed, node,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire));
  return true;
}

TEST(ConcurrentChainTableTest, SingleThreadChains) {
  ConcurrentChainTable<TestNode> table(64);
  auto nodes = std::make_unique<TestNode[]>(10);
  for (int i = 0; i < 10; ++i) {
    nodes[i].key = 1 + static_cast<uint64_t>(i % 3);  // three chains
    nodes[i].seq = i;
    ASSERT_TRUE(Prepend(&table, &nodes[i]));
  }
  EXPECT_EQ(table.claimed(), 3u);
  for (uint64_t key = 1; key <= 3; ++key) {
    int count = 0;
    int last_seq = 1 << 30;
    for (TestNode* n = table.Find(key); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      EXPECT_EQ(n->key, key);
      // Chains are prepend-only: newest first.
      EXPECT_LT(n->seq, last_seq);
      last_seq = n->seq;
      ++count;
    }
    EXPECT_GT(count, 0);
  }
  EXPECT_EQ(table.Find(99), nullptr);
}

TEST(ConcurrentChainTableTest, ZeroKeyIsUsable) {
  ConcurrentChainTable<TestNode> table(16);
  TestNode node;
  node.key = 0;  // remapped internally; must still round-trip
  ASSERT_TRUE(Prepend(&table, &node));
  EXPECT_EQ(table.Find(0), &node);
}

TEST(ConcurrentChainTableTest, SaturatedWindowRejectsCleanly) {
  // 16 slots => probe limit is the whole table; claiming 16 distinct keys
  // fills every slot and the 17th must be rejected, not looped forever.
  ConcurrentChainTable<TestNode> table(16);
  auto nodes = std::make_unique<TestNode[]>(16);
  for (int i = 0; i < 16; ++i) {
    nodes[i].key = static_cast<uint64_t>(i + 1);
    ASSERT_TRUE(Prepend(&table, &nodes[i]));
  }
  EXPECT_EQ(table.ClaimHead(1000), nullptr);
  // Existing chains stay findable after the rejection.
  EXPECT_EQ(table.Find(1), &nodes[0]);
}

// The stress proper: T threads publish N nodes each across a small key
// space while readers walk chains, then a single-threaded sweep verifies
// no node was lost, duplicated, or filed under the wrong key — with a
// seeded per-(thread, seq) key assignment so the expected population is
// deterministic.
TEST(ConcurrentChainTableTest, ConcurrentPublishLookupStress) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  constexpr uint64_t kKeySpace = 61;  // far fewer keys than nodes
  ConcurrentChainTable<TestNode> table(256);

  std::vector<std::unique_ptr<TestNode[]>> nodes(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    nodes[t] = std::make_unique<TestNode[]>(kPerThread);
    for (int i = 0; i < kPerThread; ++i) {
      // Seeded assignment: splitmix-style hash of (t, i).
      uint64_t h = (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i);
      nodes[t][i].key = 1 + Mix64(h * 0x9e3779b97f4a7c15ULL) % kKeySpace;
      nodes[t][i].thread = t;
      nodes[t][i].seq = i;
    }
  }

  std::atomic<int64_t> rejected{0};
  std::atomic<bool> reader_error{false};
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!Prepend(&table, &nodes[t][i])) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop_readers.load(std::memory_order_acquire)) {
        for (uint64_t key = 1; key <= kKeySpace; ++key) {
          for (TestNode* n = table.Find(key); n != nullptr;
               n = n->next.load(std::memory_order_acquire)) {
            // A reader must only ever see fully-published nodes filed
            // under their own key.
            if (n->key != key) reader_error.store(true);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_FALSE(reader_error.load());
  EXPECT_EQ(rejected.load(), 0);  // 61 keys fit a 256-slot table easily

  // Exhaustive single-threaded audit: every node reachable exactly once,
  // under its own key, newest-first per thread.
  int64_t seen = 0;
  for (uint64_t key = 1; key <= kKeySpace; ++key) {
    int last_seq[kThreads];
    for (int t = 0; t < kThreads; ++t) last_seq[t] = 1 << 30;
    for (TestNode* n = table.Find(key); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      ASSERT_EQ(n->key, key);
      // One thread's nodes keep their publish order within the chain.
      ASSERT_LT(n->seq, last_seq[n->thread]);
      last_seq[n->thread] = n->seq;
      ++seen;
    }
  }
  EXPECT_EQ(seen, static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(ConcurrentCostTableTest, PublishThenLookup) {
  ConcurrentCostTable table(64);
  double v = 0;
  EXPECT_FALSE(table.Lookup(42, &v));
  table.Publish(42, 3.25);
  ASSERT_TRUE(table.Lookup(42, &v));
  EXPECT_EQ(v, 3.25);
  // Duplicate publishes of the same pure value are no-ops.
  table.Publish(42, 3.25);
  ASSERT_TRUE(table.Lookup(42, &v));
  EXPECT_EQ(v, 3.25);
}

// Values are pure functions of their key, so whatever a concurrent
// reader observes must be exactly the key's value — never a torn double
// or another key's bits.
TEST(ConcurrentCostTableTest, ConcurrentPublishLookupStress) {
  constexpr int kThreads = 4;
  constexpr int kKeys = 512;
  ConcurrentCostTable table(2048);
  auto value_of = [](uint64_t key) {
    return static_cast<double>(Mix64(key)) * 0.5;
  };

  std::atomic<bool> error{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each thread publishes all keys in a different order and verifies
      // every hit along the way.
      for (int i = 0; i < kKeys; ++i) {
        uint64_t key =
            1 + static_cast<uint64_t>((i * (t + 1) * 7 + t) % kKeys);
        table.Publish(key, value_of(key));
        double v = 0;
        if (table.Lookup(key, &v) && v != value_of(key)) error.store(true);
      }
      for (uint64_t key = 1; key <= kKeys; ++key) {
        double v = 0;
        if (table.Lookup(key, &v) && v != value_of(key)) error.store(true);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_FALSE(error.load());

  // After the barrier every key must be present with its value (the table
  // is oversized, so no publish can have been dropped).
  for (uint64_t key = 1; key <= kKeys; ++key) {
    double v = 0;
    ASSERT_TRUE(table.Lookup(key, &v)) << "key " << key;
    EXPECT_EQ(v, value_of(key));
  }
}

}  // namespace
}  // namespace eca
