// Tests for the span tracer (common/trace.h): span nesting, ring
// wraparound, the disabled-mode zero-allocation guarantee, and Chrome
// trace JSON validity under concurrent multi-thread emission.

#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace eca {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON validator + trace-event extractor. Deliberately
// independent of any JSON library: it accepts exactly the grammar of
// RFC 8259 (minus number edge cases the tracer never emits) so a trace
// that loads here also loads in chrome://tracing / ui.perfetto.dev.

class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't' && e != 'u') {
          return false;
        }
        if (e == 'u') pos_ += 4;
      }
      // Raw control characters are invalid inside JSON strings; the
      // tracer must escape anything below 0x20.
      if (static_cast<unsigned char>(c) < 0x20) return false;
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// One exported event, as scraped back out of the JSON text.
struct ParsedEvent {
  std::string name;
  std::string ph;
  std::string detail;
  int tid = 0;
  double ts = 0;
  double dur = 0;
};

// The tracer emits compact JSON ("key":value, no spaces); these helpers
// scrape fields back out of one event object.
std::string FindStringField(const std::string& obj, const std::string& key) {
  size_t k = obj.find("\"" + key + "\":\"");
  if (k == std::string::npos) return "";
  size_t start = k + key.size() + 4;
  size_t end = obj.find('"', start);
  return obj.substr(start, end - start);
}

double FindNumberField(const std::string& obj, const std::string& key) {
  size_t k = obj.find("\"" + key + "\":");
  if (k == std::string::npos) return 0;
  return std::strtod(obj.c_str() + k + key.size() + 3, nullptr);
}

// Splits the traceEvents array into per-event objects by brace balance.
std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  size_t arr = json.find("\"traceEvents\":[");
  if (arr == std::string::npos) return events;
  size_t pos = arr;
  while (true) {
    size_t open = json.find('{', pos);
    if (open == std::string::npos) break;
    int depth = 0;
    size_t close = open;
    for (; close < json.size(); ++close) {
      if (json[close] == '{') ++depth;
      if (json[close] == '}' && --depth == 0) break;
    }
    std::string obj = json.substr(open, close - open + 1);
    ParsedEvent e;
    e.name = FindStringField(obj, "name");
    e.ph = FindStringField(obj, "ph");
    e.detail = FindStringField(obj, "detail");
    e.tid = static_cast<int>(FindNumberField(obj, "tid"));
    e.ts = FindNumberField(obj, "ts");
    e.dur = FindNumberField(obj, "dur");
    events.push_back(e);
    pos = close + 1;
  }
  return events;
}

const ParsedEvent* FindByName(const std::vector<ParsedEvent>& events,
                              const std::string& name) {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  // Every test leaves the tracer disabled for its neighbors.
  void TearDown() override { Tracer::Disable(); }
};

TEST_F(TraceTest, DisabledSpansCostNothing) {
  Tracer::Disable();
  int64_t allocs_before = Tracer::AllocationCountForTest();
  int buffers_before = Tracer::ThreadBufferCount();
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("disabled-span");
    EXPECT_FALSE(span.active());
    span.AppendArg("rows", static_cast<long long>(i));
    Tracer::Instant("disabled-instant");
  }
  // Disabled tracing allocates nothing and registers no thread buffers:
  // the whole path is one relaxed atomic load.
  EXPECT_EQ(Tracer::AllocationCountForTest(), allocs_before);
  EXPECT_EQ(Tracer::ThreadBufferCount(), buffers_before);
}

TEST_F(TraceTest, SpansNestInTheTimeline) {
  Tracer::Enable(64);
  {
    TraceSpan outer("outer");
    ASSERT_TRUE(outer.active());
    outer.AppendArg("rows", 42LL);
    {
      TraceSpan inner("inner");
      inner.AppendArg("kind", "probe");
    }
  }
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(), 2);

  std::string json = Tracer::ToJson();
  EXPECT_TRUE(JsonScanner(json).Validate()) << json;
  std::vector<ParsedEvent> events = ParseEvents(json);
  ASSERT_EQ(events.size(), 2u);
  const ParsedEvent* outer = FindByName(events, "outer");
  const ParsedEvent* inner = FindByName(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->ph, "X");
  EXPECT_EQ(outer->detail, "rows=42");
  EXPECT_EQ(inner->detail, "kind=probe");
  // The inner span's [ts, ts+dur] interval lies inside the outer's.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-3);
}

TEST_F(TraceTest, InstantEventsCarryDetail) {
  Tracer::Enable(64);
  Tracer::Instant("governor/reserve-fail", "hash build");
  Tracer::Disable();
  std::string json = Tracer::ToJson();
  EXPECT_TRUE(JsonScanner(json).Validate()) << json;
  std::vector<ParsedEvent> events = ParseEvents(json);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, "i");
  EXPECT_EQ(events[0].name, "governor/reserve-fail");
  EXPECT_EQ(events[0].detail, "hash build");
}

TEST_F(TraceTest, RingWrapsKeepingTheNewestEvents) {
  Tracer::Enable(/*per_thread_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    char name[Tracer::kNameSize];
    std::snprintf(name, sizeof(name), "span-%d", i);
    TraceSpan span(name);
  }
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(), 4);
  EXPECT_EQ(Tracer::DroppedCount(), 6);

  std::string json = Tracer::ToJson();
  EXPECT_TRUE(JsonScanner(json).Validate()) << json;
  std::vector<ParsedEvent> events = ParseEvents(json);
  ASSERT_EQ(events.size(), 4u);
  // The oldest events were overwritten; the last four survive.
  for (int i = 6; i < 10; ++i) {
    char name[Tracer::kNameSize];
    std::snprintf(name, sizeof(name), "span-%d", i);
    EXPECT_NE(FindByName(events, name), nullptr) << name;
  }
  EXPECT_EQ(FindByName(events, "span-0"), nullptr);
}

TEST_F(TraceTest, ReEnableDiscardsRetainedEvents) {
  Tracer::Enable(16);
  { TraceSpan span("stale"); }
  Tracer::Disable();
  ASSERT_EQ(Tracer::EventCount(), 1);
  Tracer::Enable(16);
  Tracer::Disable();
  EXPECT_EQ(Tracer::EventCount(), 0);
  EXPECT_EQ(Tracer::DroppedCount(), 0);
}

TEST_F(TraceTest, OverlongNamesAndArgsAreTruncatedNotCorrupted) {
  Tracer::Enable(16);
  std::string long_name(200, 'n');
  std::string long_arg(200, 'a');
  {
    TraceSpan span(long_name.c_str());
    span.AppendArg("k", long_arg.c_str());
  }
  Tracer::Instant(long_name.c_str(), long_arg.c_str());
  Tracer::Disable();
  std::string json = Tracer::ToJson();
  EXPECT_TRUE(JsonScanner(json).Validate()) << json;
  std::vector<ParsedEvent> events = ParseEvents(json);
  ASSERT_EQ(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_LT(e.name.size(), Tracer::kNameSize);
    EXPECT_EQ(e.name, std::string(Tracer::kNameSize - 1, 'n'));
  }
}

TEST_F(TraceTest, EscapesJsonMetaCharacters) {
  Tracer::Enable(16);
  Tracer::Instant("quote\"back\\slash", "tab\there");
  Tracer::Disable();
  std::string json = Tracer::ToJson();
  EXPECT_TRUE(JsonScanner(json).Validate()) << json;
}

TEST_F(TraceTest, ConcurrentSpansFromFourThreadsExportValidJson) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;  // 2 events each (outer + inner)
  Tracer::Enable(/*per_thread_capacity=*/2 * kSpansPerThread);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        char name[Tracer::kNameSize];
        std::snprintf(name, sizeof(name), "worker-%d", t);
        TraceSpan outer(name);
        outer.AppendArg("i", static_cast<long long>(i));
        TraceSpan inner("inner");
      }
    });
  }
  for (auto& w : workers) w.join();
  Tracer::Disable();

  EXPECT_EQ(Tracer::EventCount(), 2 * kThreads * kSpansPerThread);
  EXPECT_EQ(Tracer::DroppedCount(), 0);
  EXPECT_GE(Tracer::ThreadBufferCount(), kThreads);

  std::string json = Tracer::ToJson();
  ASSERT_TRUE(JsonScanner(json).Validate());
  std::vector<ParsedEvent> events = ParseEvents(json);
  ASSERT_EQ(events.size(),
            static_cast<size_t>(2 * kThreads * kSpansPerThread));
  // All four emitting threads appear as distinct tids.
  std::vector<int> tids;
  for (const auto& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(TraceTest, WriteJsonRoundTrips) {
  Tracer::Enable(16);
  { TraceSpan span("file-span"); }
  Tracer::Disable();
  std::string path = ::testing::TempDir() + "/eca_trace_test.json";
  Status written = Tracer::WriteJson(path);
  ASSERT_TRUE(written.ok()) << written.ToString();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_EQ(contents, Tracer::ToJson());
  EXPECT_TRUE(JsonScanner(contents).Validate());
  EXPECT_NE(contents.find("\"displayTimeUnit\""), std::string::npos);

  Status bad = Tracer::WriteJson("/nonexistent-dir/trace.json");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace eca
