#include "expr/expr.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eca {
namespace {

Schema TestSchema() {
  return Schema({{0, "x", DataType::kInt64},
                 {0, "y", DataType::kDouble},
                 {1, "x", DataType::kInt64}});
}

TEST(ScalarTest, ColumnAndConstEval) {
  Schema s = TestSchema();
  Tuple t = {I(3), Value::Real(1.5), I(7)};
  EXPECT_EQ(Col(0, "x")->Eval(s, t).AsInt(), 3);
  EXPECT_EQ(Col(1, "x")->Eval(s, t).AsInt(), 7);
  EXPECT_EQ(Lit(9)->Eval(s, t).AsInt(), 9);
}

TEST(ScalarTest, ArithmeticPropagatesNull) {
  Schema s = TestSchema();
  Tuple t = {N(), Value::Real(1.5), I(7)};
  ScalarRef sum =
      Scalar::Arith(Scalar::ArithOp::kAdd, Col(0, "x"), Col(1, "x"));
  EXPECT_TRUE(sum->Eval(s, t).is_null());
  ScalarRef prod =
      Scalar::Arith(Scalar::ArithOp::kMul, Lit(2), Col(1, "x"));
  EXPECT_DOUBLE_EQ(prod->Eval(s, t).NumericValue(), 14.0);
}

TEST(ScalarTest, DivisionByZeroIsNull) {
  Schema s = TestSchema();
  Tuple t = {I(3), Value::Real(0.0), I(7)};
  ScalarRef div =
      Scalar::Arith(Scalar::ArithOp::kDiv, Col(0, "x"), Col(0, "y"));
  EXPECT_TRUE(div->Eval(s, t).is_null());
}

TEST(PredicateTest, ComparisonNullIntolerance) {
  Schema s = TestSchema();
  PredRef p = Eq(Col(0, "x"), Col(1, "x"));
  EXPECT_TRUE(p->null_intolerant());
  EXPECT_EQ(p->Eval(s, {I(7), Value::Real(0), I(7)}), TriBool::kTrue);
  EXPECT_EQ(p->Eval(s, {I(3), Value::Real(0), I(7)}), TriBool::kFalse);
  EXPECT_EQ(p->Eval(s, {N(), Value::Real(0), I(7)}), TriBool::kUnknown);
  EXPECT_EQ(p->Eval(s, {I(3), Value::Real(0), N()}), TriBool::kUnknown);
}

TEST(PredicateTest, AndOrNotSemantics) {
  Schema s = TestSchema();
  PredRef eq = Eq(Col(0, "x"), Col(1, "x"));
  PredRef gt = Gt(Col(0, "x"), Lit(0));
  PredRef both = Predicate::And({eq, gt});
  EXPECT_EQ(both->Eval(s, {I(7), Value::Real(0), I(7)}), TriBool::kTrue);
  EXPECT_EQ(both->Eval(s, {I(-1), Value::Real(0), I(-1)}), TriBool::kFalse);
  // NULL x: eq unknown, gt unknown -> unknown, never true.
  EXPECT_EQ(both->Eval(s, {N(), Value::Real(0), I(7)}), TriBool::kUnknown);

  PredRef either = Predicate::Or({eq, gt});
  EXPECT_EQ(either->Eval(s, {I(3), Value::Real(0), I(7)}), TriBool::kTrue);
  EXPECT_EQ(either->Eval(s, {N(), Value::Real(0), I(7)}), TriBool::kUnknown);

  PredRef neg = Predicate::Not(eq);
  EXPECT_EQ(neg->Eval(s, {I(3), Value::Real(0), I(7)}), TriBool::kTrue);
  EXPECT_EQ(neg->Eval(s, {N(), Value::Real(0), I(7)}), TriBool::kUnknown);
}

TEST(PredicateTest, IsNullIsNullTolerant) {
  Schema s = TestSchema();
  PredRef p = Predicate::IsNull(Col(0, "x"));
  EXPECT_FALSE(p->null_intolerant());
  EXPECT_EQ(p->Eval(s, {N(), Value::Real(0), I(7)}), TriBool::kTrue);
  EXPECT_EQ(p->Eval(s, {I(1), Value::Real(0), I(7)}), TriBool::kFalse);
}

TEST(PredicateTest, ConstBool) {
  Schema s = TestSchema();
  EXPECT_EQ(Predicate::ConstBool(false)->Eval(s, {I(1), Value::Real(0), I(1)}),
            TriBool::kFalse);
  EXPECT_TRUE(Predicate::ConstBool(false)->null_intolerant());
  EXPECT_FALSE(Predicate::ConstBool(true)->null_intolerant());
}

TEST(PredicateTest, RefsAndLabels) {
  PredRef p = EquiJoin(0, "x", 1, "x", "p01");
  EXPECT_EQ(p->refs(), RelSet::FirstN(2));
  EXPECT_EQ(p->DisplayName(), "p01");
  EXPECT_EQ(p->ToString(), "R0.x = R1.x");
}

TEST(CompiledPredicateTest, MatchesInterpretedEval) {
  Schema s = TestSchema();
  ScalarRef expr =
      Scalar::Arith(Scalar::ArithOp::kMul, LitReal(0.5), Col(1, "x"));
  PredRef p = Predicate::And(
      {Gt(Col(0, "x"), expr), Predicate::Not(Eq(Col(0, "x"), Lit(99)))});
  CompiledPredicate compiled(p, s);
  std::vector<Tuple> tuples = {
      {I(7), Value::Real(0), I(7)},  {I(3), Value::Real(0), I(7)},
      {N(), Value::Real(0), I(7)},   {I(99), Value::Real(0), I(7)},
      {I(4), Value::Real(0), N()},
  };
  for (const Tuple& t : tuples) {
    EXPECT_EQ(compiled.Eval(t), p->Eval(s, t));
  }
}

}  // namespace
}  // namespace eca
